// Package multilevel scales the flat QBP solver to millions of components
// with the classic V-cycle of multi-level partitioning: coarsen the circuit
// by heavy-edge matching until it fits the flat solver, solve the coarsest
// level exactly as a PP(1,1) instance with the multistart QBP heuristic,
// then uncoarsen level by level — projecting the assignment down the
// hierarchy and re-polishing each level with boundary-restricted GFM/GKL
// refinement (small levels) or a deterministic greedy boundary sweep (large
// levels).
//
// The contraction is exact, not approximate: every level is itself a valid
// PP(1,1) instance over the unchanged partition topology, built so that the
// level objective of any coarse assignment equals the original objective of
// its projection, and so that a feasible coarse assignment projects to a
// feasible fine assignment (see DESIGN.md §15 for the invariants and
// proofs). That makes the V-cycle a pure search-space restriction: quality
// can differ from the flat solve, but accounting never does.
package multilevel

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// graph is one level of the contraction hierarchy: component sizes plus a
// symmetric CSR of merged couplings. Parallel wires between a pair are
// aggregated into one arc (weight sum); parallel timing constraints keep the
// tightest budget. Weight 0 marks a timing-only arc, MaxDelay
// model.Unconstrained a wire-only arc — the same convention as
// internal/adjacency, without the map-based build (a million-component level
// is built by counting sort in O(nnz) flat memory).
type graph struct {
	n        int
	sizes    []int64
	rowPtr   []int   // len n+1; arcs of j are [rowPtr[j], rowPtr[j+1])
	col      []int32 // partner, ascending within each row
	weight   []int64 // aggregated wire weight (0 ⇒ timing-only)
	maxDelay []int64 // tightest budget (model.Unconstrained ⇒ wire-only)
	pairs    int     // distinct coupled unordered pairs (len(col)/2)
}

// pairList collects raw unordered coupling records (From < To) for
// buildGraph to merge. Duplicates are legal and expected: the streamed
// binary format emits unit-weight wire records, and contraction maps many
// fine pairs onto one coarse pair.
type pairList struct {
	u, v  []int32
	w, md []int64
}

func newPairList(capHint int) *pairList {
	return &pairList{
		u:  make([]int32, 0, capHint),
		v:  make([]int32, 0, capHint),
		w:  make([]int64, 0, capHint),
		md: make([]int64, 0, capHint),
	}
}

func (pl *pairList) add(u, v int32, w, md int64) {
	pl.u = append(pl.u, u)
	pl.v = append(pl.v, v)
	pl.w = append(pl.w, w)
	pl.md = append(pl.md, md)
}

// buildGraph merges a pair list into a level graph: counting sort by the
// low endpoint, an insertion sort of each small row segment by the high
// endpoint, duplicate merging (weight sums, budget minima), then scattering
// the merged pairs into the symmetric CSR. Everything is flat-array work —
// no maps — so the visit order (and therefore the graph, and everything
// solved on it) is deterministic.
func buildGraph(n int, sizes []int64, pl *pairList) *graph {
	np := len(pl.u)
	// Counting sort by low endpoint.
	cnt := make([]int, n+1)
	for _, u := range pl.u {
		cnt[u+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	su := make([]int32, np)
	sv := make([]int32, np)
	sw := make([]int64, np)
	smd := make([]int64, np)
	pos := make([]int, n)
	copy(pos, cnt[:n])
	for k := range pl.u {
		p := pos[pl.u[k]]
		pos[pl.u[k]]++
		su[p] = pl.u[k]
		sv[p] = pl.v[k]
		sw[p] = pl.w[k]
		smd[p] = pl.md[k]
	}
	// Sort each row segment by high endpoint and merge duplicates in place.
	wr := 0
	for r := 0; r < n; r++ {
		lo, hi := cnt[r], cnt[r+1]
		seg := hi - lo
		switch {
		case seg == 0:
			continue
		case seg <= 32:
			for i := lo + 1; i < hi; i++ {
				cv, cw, cm := sv[i], sw[i], smd[i]
				j := i
				for j > lo && sv[j-1] > cv {
					sv[j], sw[j], smd[j] = sv[j-1], sw[j-1], smd[j-1]
					j--
				}
				sv[j], sw[j], smd[j] = cv, cw, cm
			}
		default:
			// Hub rows (unbounded fan-out generators) get a real sort on an
			// index permutation so the payload moves once.
			idx := make([]int, seg)
			for i := range idx {
				idx[i] = lo + i
			}
			sort.Slice(idx, func(a, b int) bool { return sv[idx[a]] < sv[idx[b]] })
			tv := make([]int32, seg)
			tw := make([]int64, seg)
			tm := make([]int64, seg)
			for i, ix := range idx {
				tv[i], tw[i], tm[i] = sv[ix], sw[ix], smd[ix]
			}
			copy(sv[lo:hi], tv)
			copy(sw[lo:hi], tw)
			copy(smd[lo:hi], tm)
		}
		for i := lo; i < hi; i++ {
			if wr > 0 && su[wr-1] == su[i] && sv[wr-1] == sv[i] && su[i] == int32(r) {
				sw[wr-1] += sw[i]
				if smd[i] < smd[wr-1] {
					smd[wr-1] = smd[i]
				}
				continue
			}
			su[wr], sv[wr], sw[wr], smd[wr] = su[i], sv[i], sw[i], smd[i]
			wr++
		}
	}
	su, sv, sw, smd = su[:wr], sv[:wr], sw[:wr], smd[:wr]

	// Symmetric CSR: each merged pair appears in both endpoint rows. Pairs
	// are visited with the low endpoint ascending (and the high endpoint
	// ascending within it), so every row receives its partners in ascending
	// order without a second sort.
	g := &graph{
		n:        n,
		sizes:    sizes,
		rowPtr:   make([]int, n+1),
		col:      make([]int32, 2*wr),
		weight:   make([]int64, 2*wr),
		maxDelay: make([]int64, 2*wr),
		pairs:    wr,
	}
	deg := make([]int, n)
	for k := 0; k < wr; k++ {
		deg[su[k]]++
		deg[sv[k]]++
	}
	for j := 0; j < n; j++ {
		g.rowPtr[j+1] = g.rowPtr[j] + deg[j]
	}
	fill := make([]int, n)
	copy(fill, g.rowPtr[:n])
	for k := 0; k < wr; k++ {
		a, b := su[k], sv[k]
		pa, pb := fill[a], fill[b]
		fill[a]++
		fill[b]++
		g.col[pa], g.weight[pa], g.maxDelay[pa] = b, sw[k], smd[k]
		g.col[pb], g.weight[pb], g.maxDelay[pb] = a, sw[k], smd[k]
	}
	return g
}

// levelZero builds the finest level from a normalized PP(1,1) problem.
// Sizes are shared, never copied or mutated.
func levelZero(p *model.Problem) (*graph, error) {
	c := p.Circuit
	n := c.N()
	pl := newPairList(len(c.Wires) + len(c.Timing))
	for _, w := range c.Wires {
		u, v := int32(w.From), int32(w.To)
		if u > v {
			u, v = v, u
		}
		pl.add(u, v, w.Weight, model.Unconstrained)
	}
	for _, t := range c.Timing {
		u, v := int32(t.From), int32(t.To)
		if u > v {
			u, v = v, u
		}
		if t.MaxDelay < 0 {
			return nil, fmt.Errorf("multilevel: timing budget (%d,%d) is negative: %d", t.From, t.To, t.MaxDelay)
		}
		pl.add(u, v, 0, t.MaxDelay)
	}
	return buildGraph(n, c.Sizes, pl), nil
}

// contract builds the next-coarser graph under the cluster map cl
// (len g.n, values in [0,nc)). Inter-cluster arcs merge with weight sums
// and budget minima; intra-cluster wires vanish from the quadratic term
// (their contribution is folded into the coarse linear matrix by the
// caller, via the returned per-cluster internal weight — nil unless
// needIntra). An intra-cluster timing budget tighter than the worst
// intra-partition delay would constrain which partitions the cluster may
// occupy, which the coarse model cannot express — the matching never
// produces one, and contract rejects it defensively (relax drops the check
// along with the constraints' meaning).
func (g *graph) contract(cl []int32, nc int, maxDiagDelay int64, relax, needIntra bool) (*graph, []int64, error) {
	sizes := make([]int64, nc)
	for j := 0; j < g.n; j++ {
		sizes[cl[j]] += g.sizes[j]
	}
	var intra []int64
	if needIntra {
		intra = make([]int64, nc)
	}
	pl := newPairList(g.pairs)
	for u := 0; u < g.n; u++ {
		for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
			v := int(g.col[k])
			if v <= u {
				continue
			}
			cu, cv := cl[u], cl[v]
			if cu == cv {
				if needIntra {
					intra[cu] += g.weight[k]
				}
				if md := g.maxDelay[k]; !relax && md != model.Unconstrained && md < maxDiagDelay {
					return nil, nil, fmt.Errorf("multilevel: contraction internalizes timing budget %d on pair (%d,%d), tighter than the worst intra-partition delay %d", md, u, v, maxDiagDelay)
				}
				continue
			}
			a, b := cu, cv
			if a > b {
				a, b = b, a
			}
			pl.add(a, b, g.weight[k], g.maxDelay[k])
		}
	}
	return buildGraph(nc, sizes, pl), intra, nil
}

// problem materializes a level as a flat PP(1,1) instance over the original
// (unchanged) partition topology. lin is the level's folded linear matrix
// (nil ⇒ zero).
func (g *graph) problem(name string, topo *model.Topology, lin [][]int64) (*model.Problem, error) {
	var wires []model.Wire
	var timing []model.TimingConstraint
	for u := 0; u < g.n; u++ {
		for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
			v := int(g.col[k])
			if v <= u {
				continue
			}
			if w := g.weight[k]; w > 0 {
				wires = append(wires, model.Wire{From: u, To: v, Weight: w})
			}
			if md := g.maxDelay[k]; md != model.Unconstrained {
				timing = append(timing, model.TimingConstraint{From: u, To: v, MaxDelay: md})
			}
		}
	}
	c := &model.Circuit{Name: name, Sizes: g.sizes, Wires: wires, Timing: timing}
	return model.NewProblem(c, topo, 1, 1, lin)
}

// foldLinear builds the coarse linear matrix: column sums of the fine
// matrix under cl, plus the internalized wire weight priced at the
// intra-partition coupling 2·b[i][i]. This is what keeps the level
// objective equal to the projected fine objective even when B's diagonal is
// nonzero; when the fine matrix is nil and the diagonal coupling is zero it
// returns nil, and the coarse level stays linear-free.
func foldLinear(linF [][]int64, cl []int32, nc int, intra []int64, cost [][]int64) [][]int64 {
	m := len(cost)
	needDiag := false
	if intra != nil {
		for i := 0; i < m; i++ {
			if cost[i][i] != 0 {
				needDiag = true
				break
			}
		}
	}
	if linF == nil && !needDiag {
		return nil
	}
	lin := make([][]int64, m)
	for i := range lin {
		lin[i] = make([]int64, nc)
	}
	if linF != nil {
		for i := 0; i < m; i++ {
			row, rowF := lin[i], linF[i]
			for j, c := range cl {
				row[c] += rowF[j]
			}
		}
	}
	if needDiag {
		for i := 0; i < m; i++ {
			bp := 2 * cost[i][i]
			if bp == 0 {
				continue
			}
			row := lin[i]
			for c, w := range intra {
				row[c] += w * bp
			}
		}
	}
	return lin
}

// timingOnlyProblem materializes just the constraint view of a level —
// sizes, capacities, delays and the tightened budgets, no wires. Exactly
// what the capacity-preserving min-conflicts repair consumes; at a
// million components this skips the wire list a full materialization would
// allocate.
func (g *graph) timingOnlyProblem(topo *model.Topology) (*model.Problem, error) {
	var timing []model.TimingConstraint
	for u := 0; u < g.n; u++ {
		for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
			v := int(g.col[k])
			if v <= u {
				continue
			}
			if md := g.maxDelay[k]; md != model.Unconstrained {
				timing = append(timing, model.TimingConstraint{From: u, To: v, MaxDelay: md})
			}
		}
	}
	c := &model.Circuit{Name: "timing-only", Sizes: g.sizes, Timing: timing}
	return model.NewProblem(c, topo, 1, 1, nil)
}

// timingFeasibleOn reports whether a satisfies every finite budget of the
// level (both delay directions), scanning the CSR once.
func (g *graph) timingFeasibleOn(a []int, delay [][]int64) bool {
	for u := 0; u < g.n; u++ {
		for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
			v := int(g.col[k])
			if v <= u {
				continue
			}
			md := g.maxDelay[k]
			if md == model.Unconstrained {
				continue
			}
			iu, iv := a[u], a[v]
			if delay[iu][iv] > md || delay[iv][iu] > md {
				return false
			}
		}
	}
	return true
}
