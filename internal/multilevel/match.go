package multilevel

import "repro/internal/model"

// heavyEdgeMatch computes a deterministic heavy-edge matching on g: visiting
// components in ascending index order, each unmatched component pairs with
// its heaviest-wire unmatched neighbor (ties broken toward the smallest
// index — the CSR stores partners ascending, so the first maximum wins),
// subject to two admissibility guards:
//
//   - size: the merged cluster must not exceed sizeLimit, so coarse
//     components stay placeable (sizeLimit never exceeds the largest
//     partition capacity);
//   - timing: a pair carrying a finite budget tighter than maxDiagDelay
//     (the worst intra-partition delay) must not be internalized, because
//     the coarse model can no longer express that constraint (relax mode
//     drops the guard along with the constraints' meaning).
//
// Unmatched components become singleton clusters. Cluster ids are assigned
// in ascending order of the smallest member index, so the map is fully
// determined by the graph. Returns the cluster map and the cluster count.
func heavyEdgeMatch(g *graph, sizeLimit, maxDiagDelay int64, relax bool) ([]int32, int) {
	const unmatched = int32(-1)
	mate := make([]int32, g.n)
	for j := range mate {
		mate[j] = unmatched
	}
	for u := 0; u < g.n; u++ {
		if mate[u] != unmatched {
			continue
		}
		best := unmatched
		var bestW int64 = -1
		for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
			v := g.col[k]
			if mate[v] != unmatched || int(v) == u {
				continue
			}
			if g.sizes[u]+g.sizes[v] > sizeLimit {
				continue
			}
			if md := g.maxDelay[k]; !relax && md != model.Unconstrained && md < maxDiagDelay {
				continue
			}
			if w := g.weight[k]; w > bestW {
				bestW = w
				best = v
			}
		}
		if best != unmatched {
			mate[u] = best
			mate[best] = int32(u)
		}
	}
	// Fallback pass: pair the leftover unmatched components with each other
	// in ascending index order, still under the size and timing guards. Two
	// populations land here — fully isolated components (no arcs at all)
	// and leaves stranded because every neighbor matched already (a
	// hub-dominated netlist leaves most of the graph in this state, and
	// heavy-edge matching alone then shrinks a level by a few percent
	// instead of half). The merge stays exact for any pairing: contract
	// folds an internalized wire into the coarse linear matrix and the
	// guard below keeps un-internalizable budgets out, exactly as in the
	// main pass.
	prev := unmatched
	for j := 0; j < g.n; j++ {
		if mate[j] != unmatched {
			continue
		}
		if prev == unmatched {
			prev = int32(j)
			continue
		}
		if g.sizes[prev]+g.sizes[j] <= sizeLimit && pairAdmissible(g, int(prev), j, maxDiagDelay, relax) {
			mate[prev] = int32(j)
			mate[j] = prev
			prev = unmatched
		} else {
			prev = int32(j) // inadmissible pairing; try the next partner
		}
	}

	cl := make([]int32, g.n)
	nc := 0
	for j := 0; j < g.n; j++ {
		if m := mate[j]; m != unmatched && int(m) < j {
			cl[j] = cl[m] // second member of a pair reuses the head's id
			continue
		}
		cl[j] = int32(nc)
		nc++
	}
	return cl, nc
}

// pairAdmissible reports whether merging unmatched components u and v would
// internalize a timing budget tighter than maxDiagDelay. Only the (at most
// one, post-merge) arc between them matters; the smaller row is scanned so a
// leaf pairing against a hub stays cheap.
func pairAdmissible(g *graph, u, v int, maxDiagDelay int64, relax bool) bool {
	if relax {
		return true
	}
	if g.rowPtr[u+1]-g.rowPtr[u] > g.rowPtr[v+1]-g.rowPtr[v] {
		u, v = v, u
	}
	for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
		if int(g.col[k]) != v {
			continue
		}
		if md := g.maxDelay[k]; md != model.Unconstrained && md < maxDiagDelay {
			return false
		}
		break // rows hold at most one merged arc per partner
	}
	return true
}

// maxDiagDelay returns max_i d[i][i] — the worst routing delay a pair of
// components can see when co-located. Any internalized timing budget at
// least this large is trivially satisfied by every assignment.
func maxDiagDelay(delay [][]int64) int64 {
	var mx int64
	for i := range delay {
		if d := delay[i][i]; d > mx {
			mx = d
		}
	}
	return mx
}
