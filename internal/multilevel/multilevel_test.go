package multilevel

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/qbp"
)

// testInstance generates a deterministic synthetic problem.
func testInstance(t testing.TB, n, wires, timing int, seed int64) *model.Problem {
	t.Helper()
	in, err := gen.Generate(gen.Params{Spec: gen.Spec{
		Name:              "ml-test",
		Components:        n,
		Wires:             int64(wires),
		TimingConstraints: timing,
		Seed:              seed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return in.Problem
}

// TestIdentityContraction: contracting with the identity cluster map
// (every component its own cluster) must reproduce the level graph
// bit-exactly — the degenerate case of the satellite "identity contraction
// reproduces the flat solve".
func TestIdentityContraction(t *testing.T) {
	p := testInstance(t, 200, 800, 300, 1).Normalized()
	g, err := levelZero(p)
	if err != nil {
		t.Fatal(err)
	}
	cl := make([]int32, g.n)
	for j := range cl {
		cl[j] = int32(j)
	}
	cg, intra, err := g.contract(cl, g.n, maxDiagDelay(p.Topology.Delay), false, true)
	if err != nil {
		t.Fatal(err)
	}
	for c, w := range intra {
		if w != 0 {
			t.Fatalf("identity contraction folded intra weight %d at cluster %d", w, c)
		}
	}
	if cg.n != g.n || cg.pairs != g.pairs {
		t.Fatalf("identity contraction changed shape: n %d→%d pairs %d→%d", g.n, cg.n, g.pairs, cg.pairs)
	}
	for j := 0; j <= g.n; j++ {
		if cg.rowPtr[j] != g.rowPtr[j] {
			t.Fatalf("rowPtr diverged at %d", j)
		}
	}
	for k := range g.col {
		if cg.col[k] != g.col[k] || cg.weight[k] != g.weight[k] || cg.maxDelay[k] != g.maxDelay[k] {
			t.Fatalf("arc %d diverged: (%d,%d,%d) vs (%d,%d,%d)", k,
				cg.col[k], cg.weight[k], cg.maxDelay[k], g.col[k], g.weight[k], g.maxDelay[k])
		}
	}
	for j, s := range g.sizes {
		if cg.sizes[j] != s {
			t.Fatalf("size diverged at %d", j)
		}
	}
}

// TestNoCoarsenMatchesFlatSolve: with CoarsenTarget ≥ N the V-cycle is the
// flat multistart solve — same assignment, same objective, bit-exactly.
func TestNoCoarsenMatchesFlatSolve(t *testing.T) {
	p := testInstance(t, 300, 1400, 500, 2)
	co := qbp.MultiStartOptions{
		Base:   qbp.Options{Iterations: 25, Seed: 7},
		Starts: 2,
	}
	ml, err := Solve(context.Background(), p, Options{Coarse: co, CoarsenTarget: p.N()})
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Levels) != 1 {
		t.Fatalf("expected identity path (1 level), got %d", len(ml.Levels))
	}
	flat, err := qbp.SolveMultiStart(context.Background(), p, co)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Objective != flat.Objective || ml.Feasible != flat.Feasible {
		t.Fatalf("identity path diverged from flat solve: obj %d/%v vs %d/%v",
			ml.Objective, ml.Feasible, flat.Objective, flat.Feasible)
	}
	for j := range flat.Assignment {
		if ml.Assignment[j] != flat.Assignment[j] {
			t.Fatalf("assignment diverged at component %d: %d vs %d", j, ml.Assignment[j], flat.Assignment[j])
		}
	}
}

// checkProjection asserts the two hierarchy invariants for one coarse
// assignment: the level objective equals the finest objective of the
// projection, and feasibility carries down (loads are identical,
// timing-feasible stays timing-feasible).
func checkProjection(t *testing.T, h *Hierarchy, k int, ak model.Assignment) {
	t.Helper()
	lp, err := h.Problem(k)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := h.Problem(0)
	if err != nil {
		t.Fatal(err)
	}
	proj := h.Project(k, ak)
	if got, want := fp.Objective(proj), lp.Objective(ak); got != want {
		t.Fatalf("level %d: projected η %d != coarse η %d", k, got, want)
	}
	if got, want := h.norm.Objective(proj), lp.Objective(ak); got != want {
		t.Fatalf("level %d: normalized-problem η %d != coarse η %d", k, got, want)
	}
	cl, fl := lp.Loads(ak), fp.Loads(proj)
	for i := range cl {
		if cl[i] != fl[i] {
			t.Fatalf("level %d: load diverged on partition %d: %d vs %d", k, i, cl[i], fl[i])
		}
	}
	if lp.TimingFeasible(ak) && !fp.TimingFeasible(proj) {
		t.Fatalf("level %d: timing-feasible coarse assignment projects to a violating fine assignment", k)
	}
}

// TestProjectionExactness: for every hierarchy level and a batch of random
// coarse assignments, η computed on the coarse graph equals η of the
// projected assignment on the fine graph, loads agree exactly, and timing
// feasibility projects down — the tentpole's bit-exact accounting contract.
func TestProjectionExactness(t *testing.T) {
	p := testInstance(t, 600, 2600, 900, 3)
	h, err := Coarsen(p, Options{CoarsenTarget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 3 {
		t.Fatalf("expected a deep hierarchy, got %d levels", h.Levels())
	}
	rng := rand.New(rand.NewSource(42))
	m := p.M()
	for k := 1; k < h.Levels(); k++ {
		for trial := 0; trial < 8; trial++ {
			ak := make(model.Assignment, h.LevelSize(k))
			for j := range ak {
				ak[j] = rng.Intn(m)
			}
			checkProjection(t, h, k, ak)
		}
	}
}

// TestProjectionWithLinearAndDiagonalCost covers the intra-cluster folding
// path: a topology with nonzero diagonal cost entries prices internalized
// wires at 2·b[i][i], which contraction must fold into the coarse linear
// matrix — plus an explicit fine-level linear matrix to exercise the
// column-sum folding.
func TestProjectionWithLinearAndDiagonalCost(t *testing.T) {
	base := testInstance(t, 400, 1700, 0, 4)
	m := base.M()
	cost := make([][]int64, m)
	for i := range cost {
		cost[i] = append([]int64(nil), base.Topology.Cost[i]...)
		cost[i][i] = int64(1 + i%3) // nonzero diagonal: co-location is not free
	}
	topo := &model.Topology{
		Capacities: base.Topology.Capacities,
		Cost:       cost,
		Delay:      base.Topology.Delay,
	}
	lin := make([][]int64, m)
	for i := range lin {
		lin[i] = make([]int64, base.N())
		for j := range lin[i] {
			lin[i][j] = int64((i*31 + j*17) % 23)
		}
	}
	p, err := model.NewProblem(base.Circuit, topo, 1, 1, lin)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Coarsen(p, Options{CoarsenTarget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 2 {
		t.Fatalf("expected coarsening, got %d levels", h.Levels())
	}
	rng := rand.New(rand.NewSource(5))
	for k := 1; k < h.Levels(); k++ {
		for trial := 0; trial < 6; trial++ {
			ak := make(model.Assignment, h.LevelSize(k))
			for j := range ak {
				ak[j] = rng.Intn(m)
			}
			checkProjection(t, h, k, ak)
		}
	}
}

// TestVCycleQuality: on a paper-scale instance where both run, the V-cycle
// stays within 5% of the flat QBP objective under identical seeds (the
// ROADMAP acceptance bound).
func TestVCycleQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("quality comparison takes seconds; skipped with -short")
	}
	p := testInstance(t, 1200, 5200, 1800, 9)
	co := qbp.MultiStartOptions{
		Base:   qbp.Options{Iterations: 60, Seed: 11},
		Starts: 2,
	}
	flat, err := qbp.SolveMultiStart(context.Background(), p, co)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Solve(context.Background(), p, Options{Coarse: co, CoarsenTarget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Levels) < 2 {
		t.Fatalf("expected coarsening, got %d levels", len(ml.Levels))
	}
	if !flat.Feasible || !ml.Feasible {
		t.Fatalf("feasibility: flat=%v multilevel=%v, want both", flat.Feasible, ml.Feasible)
	}
	if ml.Objective > flat.Objective+flat.Objective/20 {
		t.Fatalf("V-cycle η %d is more than 5%% above flat η %d", ml.Objective, flat.Objective)
	}
	t.Logf("flat η %d, V-cycle η %d (%+.2f%%), %d levels",
		flat.Objective, ml.Objective,
		100*(float64(ml.Objective)/float64(flat.Objective)-1), len(ml.Levels))
}

// TestWorkersBitIdentical: Workers only shards the coarse multistart solve,
// which is bit-identical by contract; coarsening and refinement are serial.
// The whole V-cycle must therefore be bit-identical across worker counts.
func TestWorkersBitIdentical(t *testing.T) {
	p := testInstance(t, 900, 3800, 1300, 6)
	run := func(workers int) *Result {
		res, err := Solve(context.Background(), p, Options{
			Coarse: qbp.MultiStartOptions{
				Base:    qbp.Options{Iterations: 20, Seed: 13, Workers: workers},
				Starts:  4,
				Workers: workers,
			},
			CoarsenTarget: 150,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.Objective != ref.Objective || got.Feasible != ref.Feasible {
			t.Fatalf("workers=%d diverged: η %d/%v vs %d/%v", w,
				got.Objective, got.Feasible, ref.Objective, ref.Feasible)
		}
		for j := range ref.Assignment {
			if got.Assignment[j] != ref.Assignment[j] {
				t.Fatalf("workers=%d: assignment diverged at component %d", w, j)
			}
		}
	}
}

// TestIsolatedComponentsCoarsen: an instance dominated by unwired
// components must still coarsen to the target (the isolated-pair fallback)
// and solve exactly — isolated merges fold nothing, so the hierarchy stays
// exact.
func TestIsolatedComponentsCoarsen(t *testing.T) {
	p := testInstance(t, 2000, 150, 70, 8)
	h, err := Coarsen(p, Options{CoarsenTarget: 300})
	if err != nil {
		t.Fatal(err)
	}
	top := h.LevelSize(h.Levels() - 1)
	if top > 600 {
		t.Fatalf("isolated-heavy instance stalled at %d components (target 300)", top)
	}
	rng := rand.New(rand.NewSource(17))
	m := p.M()
	for trial := 0; trial < 5; trial++ {
		ak := make(model.Assignment, top)
		for j := range ak {
			ak[j] = rng.Intn(m)
		}
		checkProjection(t, h, h.Levels()-1, ak)
	}
}

// TestCoarsenValidatesBudgets: Coarsen rejects structurally broken problems
// through the shared validate path.
func TestCoarsenValidatesBudgets(t *testing.T) {
	p := testInstance(t, 100, 300, 50, 10)
	broken := *p
	c := *p.Circuit
	c.Timing = append(append([]model.TimingConstraint(nil), c.Timing...),
		model.TimingConstraint{From: 1, To: 1, MaxDelay: 4})
	broken.Circuit = &c
	if _, err := Coarsen(&broken, Options{}); err == nil {
		t.Fatal("Coarsen accepted a self-loop timing budget")
	}
}
