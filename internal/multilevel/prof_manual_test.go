package multilevel

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/qbp"
	"repro/internal/textio"
)

// TestManualProfile is a manual phase-timing harness, gated on ML_PROF
// pointing at an instance file. Not part of the suite.
func TestManualProfile(t *testing.T) {
	path := os.Getenv("ML_PROF")
	if path == "" {
		t.Skip("set ML_PROF=<instance file>")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	t0 := time.Now()
	p, err := textio.ReadProblemAuto(f)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("read+build      %v\n", time.Since(t0))

	t0 = time.Now()
	h, err := Coarsen(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("coarsen         %v (%d levels)\n", time.Since(t0), h.Levels())
	for k, lv := range h.levels {
		fmt.Printf("  level %2d: n=%8d pairs=%8d\n", k, lv.g.n, lv.g.pairs)
	}

	t0 = time.Now()
	cp, err := h.Problem(h.Levels() - 1)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("materialize     %v (%d wires, %d timing)\n", time.Since(t0), len(cp.Circuit.Wires), len(cp.Circuit.Timing))

	t0 = time.Now()
	seed := clusterSeed(cp)
	fmt.Printf("cluster seed    %v (nil=%v)\n", time.Since(t0), seed == nil)

	t0 = time.Now()
	last := t0
	res, err := Solve(context.Background(), p, Options{
		Coarse: qbp.MultiStartOptions{Base: qbp.Options{Seed: 3, OnProgress: func(pr qbp.Progress) {
			if time.Since(last) > 10*time.Second {
				last = time.Now()
				fmt.Printf("  coarse iter %d/%d best=%d elapsed=%v\n", pr.Iteration, pr.Iterations, pr.BestPenalized, pr.Elapsed)
			}
		}}},
		OnLevel: func(ls LevelStat) {
			fmt.Printf("  level %2d done: n=%8d moves=%6d total=%v\n", ls.Level, ls.N, ls.Moves, time.Since(t0))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("solve           %v (obj=%d feasible=%v)\n", time.Since(t0), res.Objective, res.Feasible)
}
