package validate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func TestCheckPaperExample(t *testing.T) {
	p := paperex.MustNew()
	a := model.Assignment{0, 1, 3} // optimal layout
	r, err := Check(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("optimal layout reported infeasible: %+v", r)
	}
	if r.WireLength != 7 || r.QuadraticCost != 14 || r.Objective != 14 {
		t.Fatalf("WL=%d quad=%d obj=%d, want 7/14/14", r.WireLength, r.QuadraticCost, r.Objective)
	}
	if r.Loads[0] != 1 || r.Loads[1] != 1 || r.Loads[3] != 1 || r.Loads[2] != 0 {
		t.Fatalf("loads = %v", r.Loads)
	}
	if !strings.Contains(r.String(), "feasible         yes") {
		t.Fatalf("report rendering wrong:\n%s", r.String())
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	p := paperex.MustNew()
	// All three on one partition: capacity blown, timing fine (distance 0).
	r, err := Check(p, model.Assignment{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || r.OverloadedCount != 1 || r.CapacityExcess[0] != 2 {
		t.Fatalf("overload not reported: %+v", r)
	}
	// a and b at opposite corners: timing violation.
	r, err = Check(p, model.Assignment{0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TimingViolations) != 1 || r.Feasible {
		t.Fatalf("timing violation not reported: %+v", r)
	}
	if !strings.Contains(r.String(), "feasible         NO") {
		t.Fatalf("report rendering wrong:\n%s", r.String())
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	p := paperex.MustNew()
	if _, err := Check(p, model.Assignment{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Check(p, model.Assignment{0, 1, 9}); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	bad := paperex.MustNew()
	bad.Topology.Capacities = nil
	if _, err := Check(bad, model.Assignment{0, 1, 3}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

// triProblem builds a 3-component instance on 2 partitions with uniform
// inter-partition delay 5 and the given capacities and timing constraints.
func triProblem(t *testing.T, caps []int64, timing []model.TimingConstraint) *model.Problem {
	t.Helper()
	m := len(caps)
	zero := make([][]int64, m)
	delay := make([][]int64, m)
	for i := range zero {
		zero[i] = make([]int64, m)
		delay[i] = make([]int64, m)
		for k := range delay[i] {
			if i != k {
				delay[i][k] = 5
			}
		}
	}
	p, err := model.NewProblem(
		&model.Circuit{
			Name:   "tri",
			Sizes:  []int64{1, 1, 1},
			Wires:  []model.Wire{{From: 0, To: 1, Weight: 1}},
			Timing: timing,
		},
		&model.Topology{Capacities: caps, Cost: zero, Delay: delay},
		1, 1, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Timing violations must be enumerated in the constraints' declaration order,
// preserving each constraint verbatim, with satisfied ones skipped in place.
func TestTimingViolationOrdering(t *testing.T) {
	timing := []model.TimingConstraint{
		{From: 0, To: 1, MaxDelay: 1},  // parts 0,1: delay 5 > 1 — violated
		{From: 1, To: 2, MaxDelay: 10}, // parts 1,0: delay 5 ≤ 10 — fine
		{From: 2, To: 1, MaxDelay: 2},  // parts 0,1: delay 5 > 2 — violated
	}
	p := triProblem(t, []int64{3, 3}, timing)
	r, err := Check(p, model.Assignment{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TimingViolations) != 2 {
		t.Fatalf("TimingViolations = %v, want 2 entries", r.TimingViolations)
	}
	if r.TimingViolations[0] != timing[0] || r.TimingViolations[1] != timing[2] {
		t.Fatalf("TimingViolations = %v, want [%v %v] in declaration order",
			r.TimingViolations, timing[0], timing[2])
	}
}

// A zero-capacity partition overloads as soon as anything lands on it, with
// the excess equal to the full load; left empty it is not overloaded.
func TestZeroCapacityPartition(t *testing.T) {
	p := triProblem(t, []int64{0, 3}, nil)
	r, err := Check(p, model.Assignment{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.OverloadedCount != 1 || r.CapacityExcess[0] != 2 || r.CapacityExcess[1] != 0 {
		t.Fatalf("overload accounting wrong: count=%d excess=%v", r.OverloadedCount, r.CapacityExcess)
	}
	if r.Feasible {
		t.Fatal("overloaded zero-capacity partition reported feasible")
	}

	// The empty zero-capacity partition triggers nothing: load 0 ≤ cap 0.
	r, err = Check(p, model.Assignment{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.OverloadedCount != 0 || !r.Feasible {
		t.Fatalf("empty zero-capacity partition misreported: %+v", r)
	}
}

// Feasible must be the conjunction over both violation kinds: any overload or
// any timing violation alone already flips it.
func TestFeasibleFlagInteraction(t *testing.T) {
	tight := []model.TimingConstraint{{From: 0, To: 1, MaxDelay: 1}}
	loose := []model.TimingConstraint{{From: 0, To: 1, MaxDelay: 10}}
	cases := []struct {
		name         string
		caps         []int64
		timing       []model.TimingConstraint
		a            model.Assignment
		wantFeasible bool
		wantOverload int
		wantTiming   int
	}{
		{"clean", []int64{2, 2}, loose, model.Assignment{0, 1, 0}, true, 0, 0},
		{"overload only", []int64{1, 3}, loose, model.Assignment{0, 0, 1}, false, 1, 0},
		{"timing only", []int64{2, 2}, tight, model.Assignment{0, 1, 0}, false, 0, 1},
		{"both", []int64{1, 3}, tight, model.Assignment{0, 1, 0}, false, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := triProblem(t, tc.caps, tc.timing)
			r, err := Check(p, tc.a)
			if err != nil {
				t.Fatal(err)
			}
			if r.Feasible != tc.wantFeasible || r.OverloadedCount != tc.wantOverload || len(r.TimingViolations) != tc.wantTiming {
				t.Fatalf("feasible=%v overload=%d timing=%d, want %v/%d/%d",
					r.Feasible, r.OverloadedCount, len(r.TimingViolations),
					tc.wantFeasible, tc.wantOverload, tc.wantTiming)
			}
		})
	}
}

// TimingViolationsOn must agree with Check on the same (delay, timing,
// assignment) triple — it is the same check factored out for hierarchy
// levels, so the two paths may never diverge.
func TestTimingViolationsOnMatchesCheck(t *testing.T) {
	timing := []model.TimingConstraint{
		{From: 0, To: 1, MaxDelay: 1},
		{From: 1, To: 2, MaxDelay: 10},
		{From: 2, To: 1, MaxDelay: 2},
	}
	p := triProblem(t, []int64{3, 3}, timing)
	for _, a := range []model.Assignment{{0, 1, 0}, {0, 0, 0}, {1, 0, 1}, {1, 1, 0}} {
		r, err := Check(p, a)
		if err != nil {
			t.Fatal(err)
		}
		got := TimingViolationsOn(p.Topology.Delay, p.Circuit.Timing, a)
		if len(got) != len(r.TimingViolations) {
			t.Fatalf("a=%v: TimingViolationsOn found %d, Check found %d", a, len(got), len(r.TimingViolations))
		}
		for k := range got {
			if got[k] != r.TimingViolations[k] {
				t.Fatalf("a=%v: violation %d = %v, Check has %v", a, k, got[k], r.TimingViolations[k])
			}
		}
	}
}

// An asymmetric delay matrix must trip a constraint when either direction
// exceeds the budget — the symmetric constraint reading.
func TestTimingViolationsOnChecksBothDirections(t *testing.T) {
	delay := [][]int64{{0, 9}, {1, 0}} // 0→1 slow, 1→0 fast
	timing := []model.TimingConstraint{{From: 0, To: 1, MaxDelay: 5}}
	// Constraint stored as (0,1) but components placed so the stored order
	// reads the fast direction first: still violated via the reverse hop.
	if got := TimingViolationsOn(delay, timing, model.Assignment{1, 0}); len(got) != 1 {
		t.Fatalf("reverse-direction violation missed: %v", got)
	}
	if got := TimingViolationsOn(delay, timing, model.Assignment{0, 0}); len(got) != 0 {
		t.Fatalf("co-located pair flagged: %v", got)
	}
}

// CheckBudgets gates every hierarchy level before a solver sees it: accept
// well-formed sets, reject out-of-range endpoints, self-loops, and the
// negative budgets that only broken tightening arithmetic can produce.
func TestCheckBudgets(t *testing.T) {
	good := []model.TimingConstraint{
		{From: 0, To: 3, MaxDelay: 0}, // zero budget is legal: means co-locate
		{From: 2, To: 1, MaxDelay: 7},
	}
	if err := CheckBudgets(4, good); err != nil {
		t.Fatalf("well-formed budgets rejected: %v", err)
	}
	if err := CheckBudgets(4, nil); err != nil {
		t.Fatalf("empty budget set rejected: %v", err)
	}
	cases := []struct {
		name string
		n    int
		bad  model.TimingConstraint
	}{
		{"from out of range", 4, model.TimingConstraint{From: 4, To: 1, MaxDelay: 3}},
		{"negative from", 4, model.TimingConstraint{From: -1, To: 1, MaxDelay: 3}},
		{"to out of range", 4, model.TimingConstraint{From: 0, To: 9, MaxDelay: 3}},
		{"self-loop", 4, model.TimingConstraint{From: 2, To: 2, MaxDelay: 3}},
		{"negative budget", 4, model.TimingConstraint{From: 0, To: 1, MaxDelay: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckBudgets(tc.n, append(append([]model.TimingConstraint(nil), good...), tc.bad)); err == nil {
				t.Fatalf("budget %+v accepted", tc.bad)
			}
		})
	}
}

// The report must agree with the model package on every metric for random
// instances and assignments (two independently written evaluation paths).
func TestAgreesWithModel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 12, TimingProb: 0.4, WithLinear: trial%2 == 0, Alpha: 2, Beta: 3,
		})
		a := make(model.Assignment, p.N())
		for j := range a {
			a[j] = rng.Intn(p.M())
		}
		r, err := Check(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if r.Objective != p.Objective(a) {
			t.Fatalf("trial %d: objective %d != model %d", trial, r.Objective, p.Objective(a))
		}
		if r.WireLength != p.WireLength(a) {
			t.Fatalf("trial %d: WL %d != model %d", trial, r.WireLength, p.WireLength(a))
		}
		if r.Feasible != p.Feasible(a) {
			t.Fatalf("trial %d: feasible %v != model %v", trial, r.Feasible, p.Feasible(a))
		}
		if len(r.TimingViolations) != p.CountTimingViolations(a) {
			t.Fatalf("trial %d: %d violations != model %d", trial, len(r.TimingViolations), p.CountTimingViolations(a))
		}
	}
}
