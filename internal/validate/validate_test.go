package validate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func TestCheckPaperExample(t *testing.T) {
	p := paperex.New()
	a := model.Assignment{0, 1, 3} // optimal layout
	r, err := Check(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("optimal layout reported infeasible: %+v", r)
	}
	if r.WireLength != 7 || r.QuadraticCost != 14 || r.Objective != 14 {
		t.Fatalf("WL=%d quad=%d obj=%d, want 7/14/14", r.WireLength, r.QuadraticCost, r.Objective)
	}
	if r.Loads[0] != 1 || r.Loads[1] != 1 || r.Loads[3] != 1 || r.Loads[2] != 0 {
		t.Fatalf("loads = %v", r.Loads)
	}
	if !strings.Contains(r.String(), "feasible         yes") {
		t.Fatalf("report rendering wrong:\n%s", r.String())
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	p := paperex.New()
	// All three on one partition: capacity blown, timing fine (distance 0).
	r, err := Check(p, model.Assignment{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || r.OverloadedCount != 1 || r.CapacityExcess[0] != 2 {
		t.Fatalf("overload not reported: %+v", r)
	}
	// a and b at opposite corners: timing violation.
	r, err = Check(p, model.Assignment{0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TimingViolations) != 1 || r.Feasible {
		t.Fatalf("timing violation not reported: %+v", r)
	}
	if !strings.Contains(r.String(), "feasible         NO") {
		t.Fatalf("report rendering wrong:\n%s", r.String())
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	p := paperex.New()
	if _, err := Check(p, model.Assignment{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Check(p, model.Assignment{0, 1, 9}); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	bad := paperex.New()
	bad.Topology.Capacities = nil
	if _, err := Check(bad, model.Assignment{0, 1, 3}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

// The report must agree with the model package on every metric for random
// instances and assignments (two independently written evaluation paths).
func TestAgreesWithModel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 12, TimingProb: 0.4, WithLinear: trial%2 == 0, Alpha: 2, Beta: 3,
		})
		a := make(model.Assignment, p.N())
		for j := range a {
			a[j] = rng.Intn(p.M())
		}
		r, err := Check(p, a)
		if err != nil {
			t.Fatal(err)
		}
		if r.Objective != p.Objective(a) {
			t.Fatalf("trial %d: objective %d != model %d", trial, r.Objective, p.Objective(a))
		}
		if r.WireLength != p.WireLength(a) {
			t.Fatalf("trial %d: WL %d != model %d", trial, r.WireLength, p.WireLength(a))
		}
		if r.Feasible != p.Feasible(a) {
			t.Fatalf("trial %d: feasible %v != model %v", trial, r.Feasible, p.Feasible(a))
		}
		if len(r.TimingViolations) != p.CountTimingViolations(a) {
			t.Fatalf("trial %d: %d violations != model %d", trial, len(r.TimingViolations), p.CountTimingViolations(a))
		}
	}
}
