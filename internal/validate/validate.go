// Package validate independently checks a partitioning solution: it
// recomputes the objective and every constraint from the raw circuit and
// topology data and produces a human-readable report. Every CLI and bench
// run passes its results through this checker, so a bug in a solver's
// internal bookkeeping cannot silently ship a wrong number.
package validate

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Report summarizes a checked solution.
type Report struct {
	Objective        int64 // α·linear + β·quadratic
	WireLength       int64 // single-direction Σ w·b
	LinearCost       int64
	QuadraticCost    int64
	Loads            []int64
	CapacityExcess   []int64 // per partition, max(0, load − capacity)
	OverloadedCount  int
	TimingViolations []model.TimingConstraint
	Feasible         bool
}

// Check validates a complete assignment against p. It returns an error only
// for structurally unusable input (wrong length, out-of-range entries);
// constraint violations are reported, not errored.
func Check(p *model.Problem, a model.Assignment) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(a) != p.N() {
		return nil, fmt.Errorf("validate: assignment has %d entries, want %d", len(a), p.N())
	}
	m := p.M()
	for j, i := range a {
		if i < 0 || i >= m {
			return nil, fmt.Errorf("validate: component %d assigned to invalid partition %d", j, i)
		}
	}

	r := &Report{
		Loads:          make([]int64, m),
		CapacityExcess: make([]int64, m),
	}
	for j, i := range a {
		r.Loads[i] += p.Circuit.Sizes[j]
	}
	for i, l := range r.Loads {
		if l > p.Topology.Capacities[i] {
			r.CapacityExcess[i] = l - p.Topology.Capacities[i]
			r.OverloadedCount++
		}
	}
	b := p.Topology.Cost
	for _, w := range p.Circuit.Wires {
		r.WireLength += w.Weight * b[a[w.From]][a[w.To]]
		r.QuadraticCost += w.Weight * (b[a[w.From]][a[w.To]] + b[a[w.To]][a[w.From]])
	}
	if p.Linear != nil {
		for j, i := range a {
			r.LinearCost += p.Linear[i][j]
		}
	}
	r.Objective = p.Alpha*r.LinearCost + p.Beta*r.QuadraticCost
	r.TimingViolations = TimingViolationsOn(p.Topology.Delay, p.Circuit.Timing, a)
	r.Feasible = r.OverloadedCount == 0 && len(r.TimingViolations) == 0
	return r, nil
}

// TimingViolationsOn returns the timing constraints violated by a under an
// explicit delay matrix, in stored order (both delay directions checked, the
// symmetric constraint reading). It is the timing-budget check factored out
// of Check so hierarchy levels can be validated without materializing a full
// Problem: a contraction level shares the topology's delay matrix but
// carries its own tightened constraint set and its own assignment.
func TimingViolationsOn(delay [][]int64, timing []model.TimingConstraint, a model.Assignment) []model.TimingConstraint {
	var bad []model.TimingConstraint
	for _, t := range timing {
		i1, i2 := a[t.From], a[t.To]
		if delay[i1][i2] > t.MaxDelay || delay[i2][i1] > t.MaxDelay {
			bad = append(bad, t)
		}
	}
	return bad
}

// CheckBudgets validates a (possibly tightened) timing-budget set over n
// components: endpoints in range, no self-loops, and every budget
// non-negative. Contractions tighten parallel budgets to their minimum, so a
// correct hierarchy can never produce a negative budget — any budget
// arithmetic that does (e.g. subtracting internal routing slack) has made
// the level unsolvable and must be rejected before a solver sees it.
func CheckBudgets(n int, timing []model.TimingConstraint) error {
	for k, t := range timing {
		if t.From < 0 || t.From >= n || t.To < 0 || t.To >= n {
			return fmt.Errorf("validate: timing budget %d endpoints (%d,%d) out of range [0,%d)", k, t.From, t.To, n)
		}
		if t.From == t.To {
			return fmt.Errorf("validate: timing budget %d is a self-loop on component %d", k, t.From)
		}
		if t.MaxDelay < 0 {
			return fmt.Errorf("validate: timing budget %d (%d,%d) is negative: %d", k, t.From, t.To, t.MaxDelay)
		}
	}
	return nil
}

// String renders the report for CLI output.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "objective        %d\n", r.Objective)
	fmt.Fprintf(&sb, "wire length      %d\n", r.WireLength)
	fmt.Fprintf(&sb, "linear cost      %d\n", r.LinearCost)
	fmt.Fprintf(&sb, "quadratic cost   %d\n", r.QuadraticCost)
	fmt.Fprintf(&sb, "overloaded       %d partitions\n", r.OverloadedCount)
	fmt.Fprintf(&sb, "timing violated  %d constraints\n", len(r.TimingViolations))
	if r.Feasible {
		sb.WriteString("feasible         yes\n")
	} else {
		sb.WriteString("feasible         NO\n")
	}
	return sb.String()
}
