// Package validate independently checks a partitioning solution: it
// recomputes the objective and every constraint from the raw circuit and
// topology data and produces a human-readable report. Every CLI and bench
// run passes its results through this checker, so a bug in a solver's
// internal bookkeeping cannot silently ship a wrong number.
package validate

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Report summarizes a checked solution.
type Report struct {
	Objective        int64 // α·linear + β·quadratic
	WireLength       int64 // single-direction Σ w·b
	LinearCost       int64
	QuadraticCost    int64
	Loads            []int64
	CapacityExcess   []int64 // per partition, max(0, load − capacity)
	OverloadedCount  int
	TimingViolations []model.TimingConstraint
	Feasible         bool
}

// Check validates a complete assignment against p. It returns an error only
// for structurally unusable input (wrong length, out-of-range entries);
// constraint violations are reported, not errored.
func Check(p *model.Problem, a model.Assignment) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(a) != p.N() {
		return nil, fmt.Errorf("validate: assignment has %d entries, want %d", len(a), p.N())
	}
	m := p.M()
	for j, i := range a {
		if i < 0 || i >= m {
			return nil, fmt.Errorf("validate: component %d assigned to invalid partition %d", j, i)
		}
	}

	r := &Report{
		Loads:          make([]int64, m),
		CapacityExcess: make([]int64, m),
	}
	for j, i := range a {
		r.Loads[i] += p.Circuit.Sizes[j]
	}
	for i, l := range r.Loads {
		if l > p.Topology.Capacities[i] {
			r.CapacityExcess[i] = l - p.Topology.Capacities[i]
			r.OverloadedCount++
		}
	}
	b := p.Topology.Cost
	for _, w := range p.Circuit.Wires {
		r.WireLength += w.Weight * b[a[w.From]][a[w.To]]
		r.QuadraticCost += w.Weight * (b[a[w.From]][a[w.To]] + b[a[w.To]][a[w.From]])
	}
	if p.Linear != nil {
		for j, i := range a {
			r.LinearCost += p.Linear[i][j]
		}
	}
	r.Objective = p.Alpha*r.LinearCost + p.Beta*r.QuadraticCost
	d := p.Topology.Delay
	for _, t := range p.Circuit.Timing {
		i1, i2 := a[t.From], a[t.To]
		if d[i1][i2] > t.MaxDelay || d[i2][i1] > t.MaxDelay {
			r.TimingViolations = append(r.TimingViolations, t)
		}
	}
	r.Feasible = r.OverloadedCount == 0 && len(r.TimingViolations) == 0
	return r, nil
}

// String renders the report for CLI output.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "objective        %d\n", r.Objective)
	fmt.Fprintf(&sb, "wire length      %d\n", r.WireLength)
	fmt.Fprintf(&sb, "linear cost      %d\n", r.LinearCost)
	fmt.Fprintf(&sb, "quadratic cost   %d\n", r.QuadraticCost)
	fmt.Fprintf(&sb, "overloaded       %d partitions\n", r.OverloadedCount)
	fmt.Fprintf(&sb, "timing violated  %d constraints\n", len(r.TimingViolations))
	if r.Feasible {
		sb.WriteString("feasible         yes\n")
	} else {
		sb.WriteString("feasible         NO\n")
	}
	return sb.String()
}
