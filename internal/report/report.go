// Package report renders experiment results in machine- and
// human-friendly formats: the paper's fixed-width table layout lives in
// internal/bench; this package adds CSV and Markdown emitters so results
// can be diffed, plotted and pasted into EXPERIMENTS.md without manual
// editing.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/bench"
)

// csvHeader is the column layout shared by CSV and Markdown output.
var csvHeader = []string{
	"circuit", "start",
	"qbp_wl", "qbp_improve_pct", "qbp_cpu_s", "qbp_feasible",
	"gfm_wl", "gfm_improve_pct", "gfm_cpu_s", "gfm_feasible",
	"gkl_wl", "gkl_improve_pct", "gkl_cpu_s", "gkl_feasible",
}

func rowFields(r bench.Row) []string {
	emit := func(m bench.MethodResult) []string {
		return []string{
			strconv.FormatInt(m.WireLength, 10),
			strconv.FormatFloat(m.Improve, 'f', 1, 64),
			strconv.FormatFloat(m.CPU.Seconds(), 'f', 3, 64),
			strconv.FormatBool(m.Feasible),
		}
	}
	fields := []string{r.Circuit, strconv.FormatInt(r.Start, 10)}
	fields = append(fields, emit(r.QBP)...)
	fields = append(fields, emit(r.GFM)...)
	fields = append(fields, emit(r.GKL)...)
	return fields
}

// WriteCSV emits one header line plus one line per circuit.
func WriteCSV(w io.Writer, rows []bench.Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(rowFields(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown emits a GitHub-flavored table in the paper's column order.
func WriteMarkdown(w io.Writer, rows []bench.Row, timing bool) error {
	title := "Table II — without timing constraints"
	if timing {
		title = "Table III — with timing constraints"
	}
	if _, err := fmt.Fprintf(w, "### %s\n\n", title); err != nil {
		return err
	}
	fmt.Fprintln(w, "| ckt | start | QBP | (-%) | cpu | GFM | (-%) | cpu | GKL | (-%) | cpu |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "| %s | %d | %d | %.1f | %.1f | %d | %.1f | %.1f | %d | %.1f | %.1f |\n",
			r.Circuit, r.Start,
			r.QBP.WireLength, r.QBP.Improve, r.QBP.CPU.Seconds(),
			r.GFM.WireLength, r.GFM.Improve, r.GFM.CPU.Seconds(),
			r.GKL.WireLength, r.GKL.Improve, r.GKL.CPU.Seconds())
		if err != nil {
			return err
		}
	}
	return nil
}

// Series is a labeled sequence of (x, y) points, e.g. an iteration/quality
// sweep for plotting.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// WriteSeriesCSV emits a series as two CSV columns with labeled header.
func WriteSeriesCSV(w io.Writer, s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x values but %d y values", s.Label, len(s.X), len(s.Y))
	}
	cw := csv.NewWriter(w)
	xl, yl := s.XLabel, s.YLabel
	if xl == "" {
		xl = "x"
	}
	if yl == "" {
		yl = "y"
	}
	if err := cw.Write([]string{xl, yl}); err != nil {
		return err
	}
	for k := range s.X {
		if err := cw.Write([]string{
			strconv.FormatFloat(s.X[k], 'g', -1, 64),
			strconv.FormatFloat(s.Y[k], 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
