package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func sampleRows() []bench.Row {
	return []bench.Row{
		{
			Circuit: "ckta", Start: 11865,
			QBP: bench.MethodResult{WireLength: 5966, Improve: 49.7, CPU: 450 * time.Millisecond, Feasible: true},
			GFM: bench.MethodResult{WireLength: 8890, Improve: 25.1, CPU: 160 * time.Millisecond, Feasible: true},
			GKL: bench.MethodResult{WireLength: 7832, Improve: 34.0, CPU: 640 * time.Millisecond, Feasible: true},
		},
		{
			Circuit: "cktb", Start: 6398,
			QBP: bench.MethodResult{WireLength: 2769, Improve: 56.7, CPU: 260 * time.Millisecond, Feasible: true},
			GFM: bench.MethodResult{WireLength: 3362, Improve: 47.5, CPU: 60 * time.Millisecond, Feasible: true},
			GKL: bench.MethodResult{WireLength: 3150, Improve: 50.8, CPU: 450 * time.Millisecond, Feasible: true},
		},
	}
}

func TestWriteCSVParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRows()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d records, want header + 2 rows", len(records))
	}
	if records[0][0] != "circuit" || len(records[0]) != 14 {
		t.Fatalf("bad header: %v", records[0])
	}
	if records[1][0] != "ckta" || records[1][2] != "5966" || records[1][5] != "true" {
		t.Fatalf("bad row: %v", records[1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, sampleRows(), true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "| ckta | 11865 | 5966 | 49.7", "| cktb |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteMarkdown(&buf, nil, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("relaxed table mislabeled")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	s := Series{
		Label:  "iteration sweep",
		X:      []float64{10, 50, 100},
		Y:      []float64{2979, 2769, 2769},
		XLabel: "iterations",
		YLabel: "wire_length",
	}
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 || records[0][0] != "iterations" || records[2][1] != "2769" {
		t.Fatalf("bad series CSV: %v", records)
	}
	bad := Series{X: []float64{1}, Y: nil}
	if err := WriteSeriesCSV(&buf, bad); err == nil {
		t.Fatal("mismatched series accepted")
	}
	// Default axis labels.
	buf.Reset()
	if err := WriteSeriesCSV(&buf, Series{X: []float64{1}, Y: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,y") {
		t.Fatalf("default labels missing: %q", buf.String())
	}
}
