// Package model defines the data model for the performance-driven system
// partitioning problem PP(α,β) of Shih & Kuh (UCB/ERL M93/19): a circuit of
// N variable-size components connected by weighted wires must be assigned to
// M fixed-capacity partitions so that capacity constraints (C1) and pairwise
// timing constraints (C2) hold, minimizing
//
//	α·Σ p[i][j]·x[i][j]  +  β·Σ a[j1][j2]·b[A(j1)][A(j2)]
//
// The package holds the circuit (components, wires, timing constraints), the
// partition topology (capacities, interconnection cost matrix B, delay matrix
// D), assignments, objective evaluation and constraint checking. Algorithms
// live in sibling packages.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Unconstrained marks a component pair without a timing constraint: any
// inter-partition delay is acceptable. It plays the role of the ∞ entries of
// the paper's D_C matrix.
const Unconstrained = int64(math.MaxInt64)

// Wire is one entry of the interconnection matrix A: Weight parallel
// interconnections between components From and To. Wires are stored once per
// unordered pair (From < To); the matrix A is interpreted symmetrically, so
// the quadratic term of the objective counts every wire in both directions.
type Wire struct {
	From, To int
	Weight   int64
}

// TimingConstraint bounds the inter-partition routing delay allowed between
// two components: D(A(From), A(To)) ≤ MaxDelay and, because the constraint
// set is interpreted symmetrically, D(A(To), A(From)) ≤ MaxDelay as well.
// It is one finite entry of the paper's D_C matrix.
type TimingConstraint struct {
	From, To int
	MaxDelay int64
}

// Circuit is the system to partition: N components with silicon-area sizes,
// weighted interconnections, and the finite entries of the timing-constraint
// matrix D_C.
type Circuit struct {
	Name   string
	Sizes  []int64            // Sizes[j] = s_j > 0
	Wires  []Wire             // one per unordered pair, aggregated weights
	Timing []TimingConstraint // one per unordered constrained pair
}

// N returns the number of components.
func (c *Circuit) N() int { return len(c.Sizes) }

// TotalSize returns Σ s_j.
func (c *Circuit) TotalSize() int64 {
	var t int64
	for _, s := range c.Sizes {
		t += s
	}
	return t
}

// TotalWireWeight returns Σ a[j1][j2] over unordered pairs, i.e. the number
// of wires as reported in the paper's Table I.
func (c *Circuit) TotalWireWeight() int64 {
	var t int64
	for _, w := range c.Wires {
		t += w.Weight
	}
	return t
}

// Validate checks the structural invariants of the circuit: positive sizes,
// in-range and non-self wire and timing endpoints, positive wire weights and
// non-negative delay bounds.
func (c *Circuit) Validate() error {
	n := c.N()
	if n == 0 {
		return errors.New("model: circuit has no components")
	}
	for j, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("model: component %d has non-positive size %d", j, s)
		}
	}
	for k, w := range c.Wires {
		if w.From < 0 || w.From >= n || w.To < 0 || w.To >= n {
			return fmt.Errorf("model: wire %d endpoints (%d,%d) out of range [0,%d)", k, w.From, w.To, n)
		}
		if w.From == w.To {
			return fmt.Errorf("model: wire %d is a self-loop on component %d", k, w.From)
		}
		if w.Weight <= 0 {
			return fmt.Errorf("model: wire %d has non-positive weight %d", k, w.Weight)
		}
	}
	for k, t := range c.Timing {
		if t.From < 0 || t.From >= n || t.To < 0 || t.To >= n {
			return fmt.Errorf("model: timing constraint %d endpoints (%d,%d) out of range [0,%d)", k, t.From, t.To, n)
		}
		if t.From == t.To {
			return fmt.Errorf("model: timing constraint %d is a self-loop on component %d", k, t.From)
		}
		if t.MaxDelay < 0 {
			return fmt.Errorf("model: timing constraint %d has negative delay bound %d", k, t.MaxDelay)
		}
	}
	return nil
}

// Topology is the fixed partition structure: per-partition capacities, the
// wire-routing cost matrix B and the routing delay matrix D. B and D need not
// be related (the paper stresses this), nor symmetric.
type Topology struct {
	Capacities []int64   // Capacities[i] = c_i
	Cost       [][]int64 // B, M×M: b[i1][i2] = routing cost partition i1→i2
	Delay      [][]int64 // D, M×M: d[i1][i2] = routing delay partition i1→i2
}

// M returns the number of partitions.
func (t *Topology) M() int { return len(t.Capacities) }

// TotalCapacity returns Σ c_i.
func (t *Topology) TotalCapacity() int64 {
	var s int64
	for _, c := range t.Capacities {
		s += c
	}
	return s
}

// MaxCost returns the largest entry of B.
func (t *Topology) MaxCost() int64 {
	var mx int64
	for _, row := range t.Cost {
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
	}
	return mx
}

// Validate checks the structural invariants of the topology: at least one
// partition, square M×M cost and delay matrices, non-negative capacities,
// costs and delays.
func (t *Topology) Validate() error {
	m := t.M()
	if m == 0 {
		return errors.New("model: topology has no partitions")
	}
	for i, c := range t.Capacities {
		if c < 0 {
			return fmt.Errorf("model: partition %d has negative capacity %d", i, c)
		}
	}
	if err := checkSquare("cost matrix B", t.Cost, m); err != nil {
		return err
	}
	if err := checkSquare("delay matrix D", t.Delay, m); err != nil {
		return err
	}
	return nil
}

func checkSquare(name string, mat [][]int64, m int) error {
	if len(mat) != m {
		return fmt.Errorf("model: %s has %d rows, want %d", name, len(mat), m)
	}
	for i, row := range mat {
		if len(row) != m {
			return fmt.Errorf("model: %s row %d has %d columns, want %d", name, i, len(row), m)
		}
		for k, v := range row {
			if v < 0 {
				return fmt.Errorf("model: %s entry (%d,%d) is negative: %d", name, i, k, v)
			}
		}
	}
	return nil
}

// Problem is an instance of PP(α,β): a circuit, a partition topology, the
// scaling factors of the two objective terms and the optional M×N linear
// assignment-preference matrix P (nil means all zero).
type Problem struct {
	Circuit  *Circuit
	Topology *Topology
	Alpha    int64     // scale of the linear term
	Beta     int64     // scale of the quadratic term
	Linear   [][]int64 // P, M×N; nil ⇒ zero
}

// NewProblem assembles and validates a problem instance.
func NewProblem(c *Circuit, t *Topology, alpha, beta int64, linear [][]int64) (*Problem, error) {
	p := &Problem{Circuit: c, Topology: t, Alpha: alpha, Beta: beta, Linear: linear}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the combined invariants of circuit, topology, scaling
// factors and the linear matrix shape.
func (p *Problem) Validate() error {
	if p.Circuit == nil || p.Topology == nil {
		return errors.New("model: problem needs both a circuit and a topology")
	}
	if err := p.Circuit.Validate(); err != nil {
		return err
	}
	if err := p.Topology.Validate(); err != nil {
		return err
	}
	if p.Alpha < 0 || p.Beta < 0 {
		return fmt.Errorf("model: scaling factors must be non-negative (α=%d, β=%d)", p.Alpha, p.Beta)
	}
	if p.Linear != nil {
		m, n := p.Topology.M(), p.Circuit.N()
		if len(p.Linear) != m {
			return fmt.Errorf("model: linear matrix P has %d rows, want M=%d", len(p.Linear), m)
		}
		for i, row := range p.Linear {
			if len(row) != n {
				return fmt.Errorf("model: linear matrix P row %d has %d columns, want N=%d", i, len(row), n)
			}
			for j, v := range row {
				if v < 0 {
					return fmt.Errorf("model: linear matrix P entry (%d,%d) is negative: %d", i, j, v)
				}
			}
		}
	}
	return nil
}

// M returns the number of partitions.
func (p *Problem) M() int { return p.Topology.M() }

// N returns the number of components.
func (p *Problem) N() int { return p.Circuit.N() }

// LinearAt returns P[i][j], treating a nil Linear matrix as zero.
func (p *Problem) LinearAt(i, j int) int64 {
	if p.Linear == nil {
		return 0
	}
	return p.Linear[i][j]
}

// Normalized returns the equivalent PP(1,1) instance of §3 of the paper:
// the linear matrix is scaled by α and the wire weights by β, after which
// both scaling factors are 1. The receiver is not modified; circuit and
// topology data are copied as needed.
func (p *Problem) Normalized() *Problem {
	if p.Alpha == 1 && p.Beta == 1 {
		return p
	}
	c := &Circuit{
		Name:   p.Circuit.Name,
		Sizes:  p.Circuit.Sizes,
		Wires:  make([]Wire, len(p.Circuit.Wires)),
		Timing: p.Circuit.Timing,
	}
	if p.Beta == 0 {
		c.Wires = nil // β=0 removes the quadratic term entirely, e.g. PP(1,0)
	} else {
		for k, w := range p.Circuit.Wires {
			w.Weight *= p.Beta
			c.Wires[k] = w
		}
	}
	var lin [][]int64
	if p.Linear != nil && p.Alpha != 0 {
		lin = make([][]int64, len(p.Linear))
		for i, row := range p.Linear {
			lin[i] = make([]int64, len(row))
			for j, v := range row {
				lin[i][j] = v * p.Alpha
			}
		}
	}
	return &Problem{Circuit: c, Topology: p.Topology, Alpha: 1, Beta: 1, Linear: lin}
}
