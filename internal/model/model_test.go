package model

import (
	"strings"
	"testing"
)

func chain(n int) *Circuit {
	c := &Circuit{
		Name:  "chain",
		Sizes: make([]int64, n),
	}
	for j := 0; j < n; j++ {
		c.Sizes[j] = int64(j + 1)
	}
	for j := 0; j+1 < n; j++ {
		c.Wires = append(c.Wires, Wire{From: j, To: j + 1, Weight: 2})
		c.Timing = append(c.Timing, TimingConstraint{From: j, To: j + 1, MaxDelay: 1})
	}
	return c
}

func lineTopo(m int) *Topology {
	t := &Topology{
		Capacities: make([]int64, m),
		Cost:       make([][]int64, m),
		Delay:      make([][]int64, m),
	}
	for i := 0; i < m; i++ {
		t.Capacities[i] = 100
		t.Cost[i] = make([]int64, m)
		t.Delay[i] = make([]int64, m)
		for k := 0; k < m; k++ {
			d := int64(i - k)
			if d < 0 {
				d = -d
			}
			t.Cost[i][k] = d
			t.Delay[i][k] = d
		}
	}
	return t
}

func TestCircuitStats(t *testing.T) {
	c := chain(4)
	if got := c.N(); got != 4 {
		t.Fatalf("N = %d, want 4", got)
	}
	if got := c.TotalSize(); got != 10 {
		t.Fatalf("TotalSize = %d, want 10", got)
	}
	if got := c.TotalWireWeight(); got != 6 {
		t.Fatalf("TotalWireWeight = %d, want 6", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCircuitValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Circuit)
		want string
	}{
		{"empty", func(c *Circuit) { c.Sizes = nil }, "no components"},
		{"zero size", func(c *Circuit) { c.Sizes[1] = 0 }, "non-positive size"},
		{"negative size", func(c *Circuit) { c.Sizes[0] = -3 }, "non-positive size"},
		{"wire out of range", func(c *Circuit) { c.Wires[0].To = 99 }, "out of range"},
		{"wire self-loop", func(c *Circuit) { c.Wires[0].To = c.Wires[0].From }, "self-loop"},
		{"wire zero weight", func(c *Circuit) { c.Wires[0].Weight = 0 }, "non-positive weight"},
		{"timing out of range", func(c *Circuit) { c.Timing[0].From = -1 }, "out of range"},
		{"timing self-loop", func(c *Circuit) { c.Timing[0].To = c.Timing[0].From }, "self-loop"},
		{"timing negative bound", func(c *Circuit) { c.Timing[0].MaxDelay = -1 }, "negative delay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := chain(4)
			tc.mut(c)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want string
	}{
		{"no partitions", func(tp *Topology) { tp.Capacities = nil }, "no partitions"},
		{"negative capacity", func(tp *Topology) { tp.Capacities[0] = -1 }, "negative capacity"},
		{"cost not square", func(tp *Topology) { tp.Cost = tp.Cost[:1] }, "cost matrix"},
		{"delay row short", func(tp *Topology) { tp.Delay[1] = tp.Delay[1][:1] }, "delay matrix"},
		{"negative cost", func(tp *Topology) { tp.Cost[0][1] = -2 }, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := lineTopo(3)
			tc.mut(tp)
			err := tp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestProblemValidate(t *testing.T) {
	p, err := NewProblem(chain(4), lineTopo(3), 1, 1, nil)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if p.M() != 3 || p.N() != 4 {
		t.Fatalf("M,N = %d,%d want 3,4", p.M(), p.N())
	}
	if _, err := NewProblem(chain(4), lineTopo(3), -1, 1, nil); err == nil {
		t.Fatal("negative alpha accepted")
	}
	badLin := [][]int64{{0, 0, 0, 0}}
	if _, err := NewProblem(chain(4), lineTopo(3), 1, 1, badLin); err == nil {
		t.Fatal("misshapen linear matrix accepted")
	}
	lin := [][]int64{{0, 1, 2, 3}, {1, 0, 1, 2}, {2, 1, 0, 1}}
	if _, err := NewProblem(chain(4), lineTopo(3), 1, 1, lin); err != nil {
		t.Fatalf("valid linear matrix rejected: %v", err)
	}
}

func TestObjectiveAndFeasibility(t *testing.T) {
	lin := [][]int64{{0, 1, 2, 3}, {1, 0, 1, 2}, {2, 1, 0, 1}}
	p, err := NewProblem(chain(4), lineTopo(3), 2, 3, lin)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	a := Assignment{0, 0, 1, 2}
	// Wires (weight 2 each): 0-1 same partition (dist 0), 1-2 (dist 1), 2-3 (dist 1).
	if got := p.WireLength(a); got != 4 {
		t.Fatalf("WireLength = %d, want 4", got)
	}
	if got := p.QuadraticCost(a); got != 8 {
		t.Fatalf("QuadraticCost = %d, want 8 (both directions)", got)
	}
	// Linear: p[0][0]+p[0][1]+p[1][2]+p[2][3] = 0+1+1+1 = 3.
	if got := p.LinearCost(a); got != 3 {
		t.Fatalf("LinearCost = %d, want 3", got)
	}
	if got := p.Objective(a); got != 2*3+3*8 {
		t.Fatalf("Objective = %d, want %d", got, 2*3+3*8)
	}
	if !p.Feasible(a) {
		t.Fatalf("expected feasible: %v", p.CheckFeasible(a))
	}
	loads := p.Loads(a)
	if loads[0] != 3 || loads[1] != 3 || loads[2] != 4 {
		t.Fatalf("Loads = %v, want [3 3 4]", loads)
	}
}

func TestCapacityViolations(t *testing.T) {
	p, _ := NewProblem(chain(4), lineTopo(3), 1, 1, nil)
	p.Topology.Capacities = []int64{1, 100, 100}
	a := Assignment{0, 0, 1, 1}
	if p.CapacityFeasible(a) {
		t.Fatal("overloaded partition reported feasible")
	}
	bad := p.CapacityViolations(a)
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("CapacityViolations = %v, want [0]", bad)
	}
	if err := p.CheckFeasible(a); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("CheckFeasible = %v, want overloaded error", err)
	}
}

func TestTimingViolations(t *testing.T) {
	p, _ := NewProblem(chain(4), lineTopo(3), 1, 1, nil)
	// Components 1 and 2 are bound to delay ≤ 1 but placed 2 apart.
	a := Assignment{0, 0, 2, 2}
	if p.TimingFeasible(a) {
		t.Fatal("timing violation not detected")
	}
	if got := p.CountTimingViolations(a); got != 1 {
		t.Fatalf("CountTimingViolations = %d, want 1", got)
	}
	v := p.TimingViolations(a)
	if len(v) != 1 || v[0].From != 1 || v[0].To != 2 {
		t.Fatalf("TimingViolations = %v, want the (1,2) constraint", v)
	}
	if err := p.CheckFeasible(a); err == nil || !strings.Contains(err.Error(), "timing violation") {
		t.Fatalf("CheckFeasible = %v, want timing error", err)
	}
	// Relaxing the bound restores feasibility.
	p.Circuit.Timing[1].MaxDelay = 2
	if !p.TimingFeasible(a) {
		t.Fatal("relaxed constraint still violated")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := NewAssignment(3)
	if a.Complete() {
		t.Fatal("fresh assignment reported complete")
	}
	if a.Valid(4) {
		t.Fatal("unassigned entries reported valid")
	}
	a[0], a[1], a[2] = 1, 2, 3
	if !a.Complete() || !a.Valid(4) || a.Valid(3) {
		t.Fatal("Complete/Valid misbehave on assigned vector")
	}
	b := a.Clone()
	b[0] = 0
	if a[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestCheckFeasibleWrongLengthAndRange(t *testing.T) {
	p, _ := NewProblem(chain(4), lineTopo(3), 1, 1, nil)
	if err := p.CheckFeasible(Assignment{0, 0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if err := p.CheckFeasible(Assignment{0, 0, 0, 7}); err == nil || !strings.Contains(err.Error(), "invalid partition") {
		t.Fatalf("out-of-range assignment: %v", err)
	}
}

func TestNormalized(t *testing.T) {
	lin := [][]int64{{0, 1, 2, 3}, {1, 0, 1, 2}, {2, 1, 0, 1}}
	p, _ := NewProblem(chain(4), lineTopo(3), 2, 3, lin)
	q := p.Normalized()
	if q.Alpha != 1 || q.Beta != 1 {
		t.Fatalf("Normalized scaling = (%d,%d), want (1,1)", q.Alpha, q.Beta)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("normalized problem invalid: %v", err)
	}
	for _, a := range []Assignment{{0, 0, 1, 2}, {2, 1, 0, 0}, {1, 1, 1, 1}} {
		if p.Objective(a) != q.Objective(a) {
			t.Fatalf("objective mismatch under %v: %d vs %d", a, p.Objective(a), q.Objective(a))
		}
	}
	// PP(1,0): quadratic term dropped entirely.
	p0, _ := NewProblem(chain(4), lineTopo(3), 1, 0, lin)
	q0 := p0.Normalized()
	if err := q0.Validate(); err != nil {
		t.Fatalf("PP(1,0) normalization invalid: %v", err)
	}
	a := Assignment{0, 1, 2, 0}
	if p0.Objective(a) != q0.Objective(a) {
		t.Fatalf("PP(1,0) objective mismatch: %d vs %d", p0.Objective(a), q0.Objective(a))
	}
	// Already normalized problems are returned as-is.
	p11, _ := NewProblem(chain(4), lineTopo(3), 1, 1, nil)
	if p11.Normalized() != p11 {
		t.Fatal("PP(1,1) should normalize to itself")
	}
}

func TestNormalizedDoesNotMutateOriginal(t *testing.T) {
	p, _ := NewProblem(chain(4), lineTopo(3), 2, 3, nil)
	w0 := p.Circuit.Wires[0].Weight
	_ = p.Normalized()
	if p.Circuit.Wires[0].Weight != w0 {
		t.Fatal("Normalized mutated the original wire weights")
	}
}
