package model

import "fmt"

// Unassigned marks a component that has not been placed yet.
const Unassigned = -1

// Assignment maps each component to a partition: a[j] = i means component j
// is assigned to partition i (the paper's A: J → I, equivalently the x[i][j]
// indicator matrix restricted by the generalized upper bound constraint C3).
type Assignment []int

// NewAssignment returns an assignment of n components, all Unassigned.
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for j := range a {
		a[j] = Unassigned
	}
	return a
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	b := make(Assignment, len(a))
	copy(b, a)
	return b
}

// Complete reports whether every component is assigned.
func (a Assignment) Complete() bool {
	for _, i := range a {
		if i == Unassigned {
			return false
		}
	}
	return true
}

// Valid reports whether every component is assigned to a partition in
// [0, m), i.e. the assignment satisfies C3 for the given partition count.
func (a Assignment) Valid(m int) bool {
	for _, i := range a {
		if i < 0 || i >= m {
			return false
		}
	}
	return true
}

// Loads returns the per-partition total component size under a.
// Unassigned components contribute nothing.
func (p *Problem) Loads(a Assignment) []int64 {
	loads := make([]int64, p.M())
	for j, i := range a {
		if i != Unassigned {
			loads[i] += p.Circuit.Sizes[j]
		}
	}
	return loads
}

// LinearCost returns Σ p[A(j)][j] (unscaled by α).
func (p *Problem) LinearCost(a Assignment) int64 {
	if p.Linear == nil {
		return 0
	}
	var c int64
	for j, i := range a {
		c += p.Linear[i][j]
	}
	return c
}

// WireLength returns Σ over stored wires of weight·b[A(j1)][A(j2)], counting
// every wire once in its stored direction. For a symmetric B this is half
// the quadratic term of the objective; it is the "total Manhattan wire
// length" metric of the paper's Tables II and III when B is a Manhattan
// distance matrix.
func (p *Problem) WireLength(a Assignment) int64 {
	b := p.Topology.Cost
	var c int64
	for _, w := range p.Circuit.Wires {
		c += w.Weight * b[a[w.From]][a[w.To]]
	}
	return c
}

// QuadraticCost returns the full quadratic term Σ a[j1][j2]·b[A(j1)][A(j2)]
// over ordered pairs, with the wire list interpreted as a symmetric matrix A
// (unscaled by β): each stored wire contributes in both directions.
func (p *Problem) QuadraticCost(a Assignment) int64 {
	b := p.Topology.Cost
	var c int64
	for _, w := range p.Circuit.Wires {
		c += w.Weight * (b[a[w.From]][a[w.To]] + b[a[w.To]][a[w.From]])
	}
	return c
}

// Objective returns the PP(α,β) objective α·LinearCost + β·QuadraticCost.
func (p *Problem) Objective(a Assignment) int64 {
	return p.Alpha*p.LinearCost(a) + p.Beta*p.QuadraticCost(a)
}

// CapacityViolations returns the indices of partitions whose load exceeds
// capacity under a (constraint C1).
func (p *Problem) CapacityViolations(a Assignment) []int {
	loads := p.Loads(a)
	var bad []int
	for i, l := range loads {
		if l > p.Topology.Capacities[i] {
			bad = append(bad, i)
		}
	}
	return bad
}

// CapacityFeasible reports whether a satisfies the capacity constraints C1.
func (p *Problem) CapacityFeasible(a Assignment) bool {
	loads := p.Loads(a)
	for i, l := range loads {
		if l > p.Topology.Capacities[i] {
			return false
		}
	}
	return true
}

// TimingViolations returns the timing constraints violated by a
// (constraint C2, checked in both directions of each stored constraint).
func (p *Problem) TimingViolations(a Assignment) []TimingConstraint {
	d := p.Topology.Delay
	var bad []TimingConstraint
	for _, t := range p.Circuit.Timing {
		i1, i2 := a[t.From], a[t.To]
		if d[i1][i2] > t.MaxDelay || d[i2][i1] > t.MaxDelay {
			bad = append(bad, t)
		}
	}
	return bad
}

// CountTimingViolations returns the number of violated timing constraints
// without allocating the violation list.
func (p *Problem) CountTimingViolations(a Assignment) int {
	d := p.Topology.Delay
	n := 0
	for _, t := range p.Circuit.Timing {
		i1, i2 := a[t.From], a[t.To]
		if d[i1][i2] > t.MaxDelay || d[i2][i1] > t.MaxDelay {
			n++
		}
	}
	return n
}

// TimingFeasible reports whether a satisfies the timing constraints C2.
func (p *Problem) TimingFeasible(a Assignment) bool {
	d := p.Topology.Delay
	for _, t := range p.Circuit.Timing {
		i1, i2 := a[t.From], a[t.To]
		if d[i1][i2] > t.MaxDelay || d[i2][i1] > t.MaxDelay {
			return false
		}
	}
	return true
}

// Feasible reports whether a is a complete, in-range assignment satisfying
// both C1 and C2.
func (p *Problem) Feasible(a Assignment) bool {
	return len(a) == p.N() && a.Valid(p.M()) &&
		p.CapacityFeasible(a) && p.TimingFeasible(a)
}

// CheckFeasible is like Feasible but explains the first violation found.
func (p *Problem) CheckFeasible(a Assignment) error {
	if len(a) != p.N() {
		return fmt.Errorf("model: assignment has %d entries, want N=%d", len(a), p.N())
	}
	if !a.Valid(p.M()) {
		for j, i := range a {
			if i < 0 || i >= p.M() {
				return fmt.Errorf("model: component %d assigned to invalid partition %d", j, i)
			}
		}
	}
	loads := p.Loads(a)
	for i, l := range loads {
		if l > p.Topology.Capacities[i] {
			return fmt.Errorf("model: partition %d overloaded: load %d > capacity %d", i, l, p.Topology.Capacities[i])
		}
	}
	d := p.Topology.Delay
	for _, t := range p.Circuit.Timing {
		i1, i2 := a[t.From], a[t.To]
		if d[i1][i2] > t.MaxDelay || d[i2][i1] > t.MaxDelay {
			return fmt.Errorf("model: timing violation between components %d (partition %d) and %d (partition %d): delay bound %d",
				t.From, i1, t.To, i2, t.MaxDelay)
		}
	}
	return nil
}
