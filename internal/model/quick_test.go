package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// instanceSeed drives the deterministic construction of a random instance
// inside the quick properties.
type instanceSeed struct {
	Seed  int64
	N     uint8
	M     uint8
	Alpha uint8
	Beta  uint8
}

// Generate implements quick.Generator so properties receive well-formed
// random instances rather than arbitrary structs.
func (instanceSeed) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(instanceSeed{
		Seed:  r.Int63(),
		N:     uint8(2 + r.Intn(12)),
		M:     uint8(2 + r.Intn(5)),
		Alpha: uint8(r.Intn(4)),
		Beta:  uint8(r.Intn(4)),
	})
}

func (is instanceSeed) build() (*Problem, Assignment) {
	rng := rand.New(rand.NewSource(is.Seed))
	n, m := int(is.N), int(is.M)
	c := &Circuit{Sizes: make([]int64, n)}
	for j := range c.Sizes {
		c.Sizes[j] = 1 + rng.Int63n(9)
	}
	for j1 := 0; j1 < n; j1++ {
		for j2 := j1 + 1; j2 < n; j2++ {
			if rng.Intn(2) == 0 {
				c.Wires = append(c.Wires, Wire{From: j1, To: j2, Weight: 1 + rng.Int63n(4)})
			}
			if rng.Intn(4) == 0 {
				c.Timing = append(c.Timing, TimingConstraint{From: j1, To: j2, MaxDelay: rng.Int63n(4)})
			}
		}
	}
	topo := &Topology{
		Capacities: make([]int64, m),
		Cost:       make([][]int64, m),
		Delay:      make([][]int64, m),
	}
	for i := 0; i < m; i++ {
		topo.Capacities[i] = 1 + rng.Int63n(50)
		topo.Cost[i] = make([]int64, m)
		topo.Delay[i] = make([]int64, m)
		for k := 0; k < m; k++ {
			if i != k {
				topo.Cost[i][k] = rng.Int63n(6)
				topo.Delay[i][k] = rng.Int63n(6)
			}
		}
	}
	lin := make([][]int64, m)
	for i := range lin {
		lin[i] = make([]int64, n)
		for j := range lin[i] {
			lin[i][j] = rng.Int63n(7)
		}
	}
	p := &Problem{
		Circuit:  c,
		Topology: topo,
		Alpha:    int64(is.Alpha),
		Beta:     int64(is.Beta),
		Linear:   lin,
	}
	a := make(Assignment, n)
	for j := range a {
		a[j] = rng.Intn(m)
	}
	return p, a
}

// Property: loads always sum to the total component size, regardless of
// assignment.
func TestQuickLoadsConserveSize(t *testing.T) {
	f := func(is instanceSeed) bool {
		p, a := is.build()
		var sum int64
		for _, l := range p.Loads(a) {
			sum += l
		}
		return sum == p.Circuit.TotalSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the objective decomposes exactly into its scaled terms.
func TestQuickObjectiveDecomposition(t *testing.T) {
	f := func(is instanceSeed) bool {
		p, a := is.build()
		return p.Objective(a) == p.Alpha*p.LinearCost(a)+p.Beta*p.QuadraticCost(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with a symmetric B, the quadratic term is exactly twice the
// single-direction wire length.
func TestQuickQuadraticIsTwiceWireLengthWhenSymmetric(t *testing.T) {
	f := func(is instanceSeed) bool {
		p, a := is.build()
		b := p.Topology.Cost
		for i := range b {
			for k := i + 1; k < len(b); k++ {
				b[i][k] = b[k][i] // symmetrize
			}
		}
		return p.QuadraticCost(a) == 2*p.WireLength(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalization preserves the objective for every assignment.
func TestQuickNormalizationPreservesObjective(t *testing.T) {
	f := func(is instanceSeed) bool {
		p, a := is.build()
		return p.Normalized().Objective(a) == p.Objective(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: feasibility is monotone in capacity — raising every capacity
// never makes a feasible assignment infeasible.
func TestQuickCapacityMonotonicity(t *testing.T) {
	f := func(is instanceSeed, extra uint8) bool {
		p, a := is.build()
		was := p.CapacityFeasible(a)
		for i := range p.Topology.Capacities {
			p.Topology.Capacities[i] += int64(extra)
		}
		if was && !p.CapacityFeasible(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: relaxing every timing bound preserves timing feasibility.
func TestQuickTimingMonotonicity(t *testing.T) {
	f := func(is instanceSeed, extra uint8) bool {
		p, a := is.build()
		was := p.TimingFeasible(a)
		for k := range p.Circuit.Timing {
			p.Circuit.Timing[k].MaxDelay += int64(extra)
		}
		if was && !p.TimingFeasible(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CountTimingViolations agrees with len(TimingViolations), and
// zero violations coincides with TimingFeasible.
func TestQuickViolationCountingConsistent(t *testing.T) {
	f := func(is instanceSeed) bool {
		p, a := is.build()
		count := p.CountTimingViolations(a)
		list := p.TimingViolations(a)
		return count == len(list) && (count == 0) == p.TimingFeasible(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
