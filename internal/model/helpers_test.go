package model

import "testing"

func TestTopologyAggregates(t *testing.T) {
	tp := lineTopo(4)
	if got := tp.TotalCapacity(); got != 400 {
		t.Fatalf("TotalCapacity = %d, want 400", got)
	}
	if got := tp.MaxCost(); got != 3 {
		t.Fatalf("MaxCost = %d, want 3 (line of 4 partitions)", got)
	}
	empty := &Topology{Capacities: []int64{1}, Cost: [][]int64{{0}}, Delay: [][]int64{{0}}}
	if got := empty.MaxCost(); got != 0 {
		t.Fatalf("MaxCost of zero matrix = %d", got)
	}
}

func TestLinearAtNilMatrix(t *testing.T) {
	p, err := NewProblem(chain(3), lineTopo(2), 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LinearAt(1, 2); got != 0 {
		t.Fatalf("LinearAt on nil P = %d, want 0", got)
	}
	if got := p.LinearCost(Assignment{0, 1, 0}); got != 0 {
		t.Fatalf("LinearCost on nil P = %d, want 0", got)
	}
}
