// Package sparsemat holds the coupling-matrix representations behind the
// solve kernels. The paper's instances are netlists, and netlist coupling
// matrices a[j1][j2] are overwhelmingly sparse (bounded fan-out), so the
// canonical representation here is CSR: per-component neighbor lists stored
// as four flat, contiguous arrays — no per-row slice headers, no pointer
// chasing, one cache stream per kernel pass. A dense row-major mirror is
// kept for instances whose coupling graph genuinely fills up (a dense row
// scan has no index indirection at all), with automatic selection between
// the two by measured density.
//
// Every representation enumerates exactly the same coupling multiset in the
// same (ascending-partner) order, and the kernels consuming them accumulate
// in exact int64 arithmetic — so dense and sparse paths are bit-identical by
// construction, and the choice is purely a cost model.
package sparsemat

import (
	"fmt"

	"repro/internal/adjacency"
	"repro/internal/flatmat"
	"repro/internal/model"
)

// UnconstrainedClass marks arcs without a finite timing bound; it matches
// flatmat.UnconstrainedClass, the value the effective-row kernel dispatches
// on.
const UnconstrainedClass = flatmat.UnconstrainedClass

// NoArc is the Dense class entry of component pairs with no coupling at all
// (no wire and no timing bound). Distinct from UnconstrainedClass, which
// still carries a wire weight.
const NoArc = -2

// CSR is the compressed-sparse-row coupling matrix: row j's arcs occupy the
// index range [RowPtr[j], RowPtr[j+1]) of the parallel Col/Weight/Class/
// MaxDelay arrays. Within a row, Col is strictly ascending (inherited from
// adjacency.Lists). Build once per solve with FromLists; immutable
// afterwards and safe for concurrent readers.
type CSR struct {
	N        int
	RowPtr   []int32 // len N+1
	Col      []int32 // len nnz: partner component index
	Weight   []int64 // len nnz: aggregated wire weight (0 for timing-only arcs)
	Class    []int32 // len nnz: delay class, UnconstrainedClass when unbounded
	MaxDelay []int64 // len nnz: tightest timing bound, model.Unconstrained when none
}

// FromLists flattens adjacency lists (plus their per-arc delay classes, as
// produced by adjacency.Lists.DelayClasses) into CSR. A nil classes marks
// every arc UnconstrainedClass — the relaxed-timing configuration, where the
// bounds are ignored entirely.
func FromLists(l *adjacency.Lists, classes [][]int) *CSR {
	nnz := l.NNZ()
	c := &CSR{
		N:        l.N,
		RowPtr:   make([]int32, l.N+1),
		Col:      make([]int32, nnz),
		Weight:   make([]int64, nnz),
		Class:    make([]int32, nnz),
		MaxDelay: make([]int64, nnz),
	}
	k := 0
	for j, arcs := range l.Arcs {
		c.RowPtr[j] = int32(k)
		for x, a := range arcs {
			c.Col[k] = int32(a.Other)
			c.Weight[k] = a.Weight
			c.Class[k] = UnconstrainedClass
			if classes != nil && classes[j] != nil {
				c.Class[k] = int32(classes[j][x])
			}
			c.MaxDelay[k] = a.MaxDelay
			k++
		}
	}
	c.RowPtr[l.N] = int32(k)
	return c
}

// NNZ returns the number of stored arcs (both directions of each coupled
// pair).
func (c *CSR) NNZ() int { return len(c.Col) }

// Degree returns the number of distinct partners of component j.
func (c *CSR) Degree(j int) int { return int(c.RowPtr[j+1] - c.RowPtr[j]) }

// Row returns the index range of component j's arcs in the parallel arrays.
func (c *CSR) Row(j int) (lo, hi int) { return int(c.RowPtr[j]), int(c.RowPtr[j+1]) }

// Density is the fraction of ordered off-diagonal pairs that carry a
// coupling: NNZ / (N·(N−1)). Zero for N < 2.
func (c *CSR) Density() float64 {
	if c.N < 2 {
		return 0
	}
	return float64(c.NNZ()) / (float64(c.N) * float64(c.N-1))
}

// WireWeight returns the aggregated wire weight between j1 and j2 (0 when
// uncoupled), by binary search over j1's ascending partner row.
func (c *CSR) WireWeight(j1, j2 int) int64 {
	if k := c.find(j1, j2); k >= 0 {
		return c.Weight[k]
	}
	return 0
}

// PairMaxDelay returns the tightest timing bound between j1 and j2
// (model.Unconstrained when the pair carries none).
func (c *CSR) PairMaxDelay(j1, j2 int) int64 {
	if k := c.find(j1, j2); k >= 0 {
		return c.MaxDelay[k]
	}
	return model.Unconstrained
}

// find locates the arc (j1, j2) in j1's row, -1 when absent.
func (c *CSR) find(j1, j2 int) int {
	lo, hi := c.Row(j1)
	t := int32(j2)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.Col[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(c.RowPtr[j1+1]) && c.Col[lo] == t {
		return lo
	}
	return -1
}

// BalancedShards splits the rows [0, N) into parts contiguous ranges of
// near-equal arc mass and returns the parts+1 boundary list. Each row is
// weighted by its degree plus one — the "+1" charges the per-column fixed
// work (zeroing, linear/ω terms) so empty rows still count — which keeps
// worker shards balanced on skewed-degree instances where equal row counts
// are not equal work. The boundaries depend only on the matrix and parts,
// never on the assignment, so sharded kernels stay deterministic.
func (c *CSR) BalancedShards(parts int) []int {
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	total := int64(c.NNZ()) + int64(c.N)
	b := 1
	var acc int64
	for j := 0; j < c.N && b < parts; j++ {
		acc += int64(c.Degree(j)) + 1
		for b < parts && acc*int64(parts) >= int64(b)*total {
			bounds[b] = j + 1
			b++
		}
	}
	for ; b <= parts; b++ {
		bounds[b] = c.N
	}
	return bounds
}

// Dense is the row-major dense mirror: entry (j1, j2) lives at j1·N + j2.
// Class is NoArc where the pair carries no coupling, so a row scan skips
// non-entries with a single comparison and no index array.
type Dense struct {
	N      int
	Weight []int64 // N×N
	Class  []int32 // N×N, NoArc for absent pairs
}

// ToDense materializes the dense mirror. O(N²) memory — callers gate this
// behind the density threshold (or an explicit user override).
func (c *CSR) ToDense() *Dense {
	n := c.N
	d := &Dense{
		N:      n,
		Weight: make([]int64, n*n),
		Class:  make([]int32, n*n),
	}
	for r := range d.Class {
		d.Class[r] = NoArc
	}
	for j := 0; j < n; j++ {
		lo, hi := c.Row(j)
		base := j * n
		for k := lo; k < hi; k++ {
			d.Weight[base+int(c.Col[k])] = c.Weight[k]
			d.Class[base+int(c.Col[k])] = c.Class[k]
		}
	}
	return d
}

// Row returns the contiguous weight and class rows of component j.
func (d *Dense) Row(j int) (w []int64, cls []int32) {
	return d.Weight[j*d.N : (j+1)*d.N], d.Class[j*d.N : (j+1)*d.N]
}

// Rep selects the coupling representation behind the solve kernels.
type Rep int

const (
	// RepAuto picks by density: CSR below DefaultDensityThreshold (or the
	// caller's override), dense at or above it.
	RepAuto Rep = iota
	// RepSparse forces the CSR kernels.
	RepSparse
	// RepDense forces the dense row-scan kernels.
	RepDense
)

// DefaultDensityThreshold is the auto-selection crossover. Both kernel
// families pay the identical fused effective-row arithmetic per stored arc;
// the dense scan saves only the per-arc column indirection and in exchange
// visits every non-entry slot (plus an O(N²) mirror build per solve), so it
// can win only when nearly every slot holds an arc. Netlists never get
// close; only near-complete coupling graphs (random QAP-style instances)
// cross it.
const DefaultDensityThreshold = 0.9

// String returns the flag spelling of r.
func (r Rep) String() string {
	switch r {
	case RepSparse:
		return "sparse"
	case RepDense:
		return "dense"
	default:
		return "auto"
	}
}

// ParseRep parses the -matrix flag spelling.
func ParseRep(s string) (Rep, error) {
	switch s {
	case "auto", "":
		return RepAuto, nil
	case "sparse":
		return RepSparse, nil
	case "dense":
		return RepDense, nil
	}
	return RepAuto, fmt.Errorf("sparsemat: unknown representation %q (want auto, sparse or dense)", s)
}

// Resolve turns a requested representation into a concrete one for this
// matrix: explicit requests pass through, RepAuto compares the measured
// density against threshold (≤ 0 means DefaultDensityThreshold).
func (c *CSR) Resolve(r Rep, threshold float64) Rep {
	if r != RepAuto {
		return r
	}
	if threshold <= 0 {
		threshold = DefaultDensityThreshold
	}
	if c.Density() >= threshold {
		return RepDense
	}
	return RepSparse
}
