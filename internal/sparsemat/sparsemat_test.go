package sparsemat

import (
	"math/rand"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/model"
)

// randomCircuit draws a circuit with roughly avgDeg distinct partners per
// component and a timing bound on about a third of the coupled pairs.
func randomCircuit(rng *rand.Rand, n int, avgDeg float64) *model.Circuit {
	c := &model.Circuit{Name: "sm", Sizes: make([]int64, n)}
	for j := range c.Sizes {
		c.Sizes[j] = 1
	}
	pairs := int(float64(n) * avgDeg / 2)
	for p := 0; p < pairs; p++ {
		j1, j2 := rng.Intn(n), rng.Intn(n)
		if j1 == j2 {
			continue
		}
		c.Wires = append(c.Wires, model.Wire{From: j1, To: j2, Weight: 1 + rng.Int63n(5)})
		if rng.Intn(3) == 0 {
			c.Timing = append(c.Timing, model.TimingConstraint{From: j1, To: j2, MaxDelay: 1 + rng.Int63n(4)})
		}
	}
	// A timing-only pair exercises the weight-0 arcs.
	if n >= 2 {
		c.Timing = append(c.Timing, model.TimingConstraint{From: 0, To: n - 1, MaxDelay: 2})
	}
	return c
}

func TestFromListsMirrorsAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		l := adjacency.Build(randomCircuit(rng, n, 1+4*rng.Float64()))
		_, classes := l.DelayClasses()
		c := FromLists(l, classes)
		if c.N != l.N || c.NNZ() != l.NNZ() {
			t.Fatalf("trial %d: shape N=%d nnz=%d, want %d/%d", trial, c.N, c.NNZ(), l.N, l.NNZ())
		}
		for j := 0; j < n; j++ {
			lo, hi := c.Row(j)
			if hi-lo != len(l.Arcs[j]) || c.Degree(j) != l.Degree(j) {
				t.Fatalf("trial %d: row %d length %d, want %d", trial, j, hi-lo, len(l.Arcs[j]))
			}
			for x, a := range l.Arcs[j] {
				k := lo + x
				if int(c.Col[k]) != a.Other || c.Weight[k] != a.Weight || c.MaxDelay[k] != a.MaxDelay {
					t.Fatalf("trial %d: arc (%d,%d) diverged", trial, j, a.Other)
				}
				if int(c.Class[k]) != classes[j][x] {
					t.Fatalf("trial %d: class of arc (%d,%d) = %d, want %d",
						trial, j, a.Other, c.Class[k], classes[j][x])
				}
				if x > 0 && c.Col[k] <= c.Col[k-1] {
					t.Fatalf("trial %d: row %d not strictly ascending", trial, j)
				}
			}
		}
	}
}

func TestNilClassesMarkEverythingUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := adjacency.Build(randomCircuit(rng, 20, 3))
	c := FromLists(l, nil)
	for k := range c.Class {
		if c.Class[k] != UnconstrainedClass {
			t.Fatalf("arc %d: class %d, want UnconstrainedClass", k, c.Class[k])
		}
	}
}

func TestPairLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := adjacency.Build(randomCircuit(rng, 30, 4))
	c := FromLists(l, nil)
	for j1 := 0; j1 < c.N; j1++ {
		for j2 := 0; j2 < c.N; j2++ {
			if got, want := c.WireWeight(j1, j2), l.WireWeight(j1, j2); got != want {
				t.Fatalf("WireWeight(%d,%d) = %d, want %d", j1, j2, got, want)
			}
			if got, want := c.PairMaxDelay(j1, j2), l.MaxDelay(j1, j2); got != want {
				t.Fatalf("PairMaxDelay(%d,%d) = %d, want %d", j1, j2, got, want)
			}
		}
	}
}

func TestToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := adjacency.Build(randomCircuit(rng, 25, 5))
	_, classes := l.DelayClasses()
	c := FromLists(l, classes)
	d := c.ToDense()
	for j1 := 0; j1 < c.N; j1++ {
		w, cls := d.Row(j1)
		for j2 := 0; j2 < c.N; j2++ {
			k := c.find(j1, j2)
			switch {
			case k < 0:
				if cls[j2] != NoArc || w[j2] != 0 {
					t.Fatalf("(%d,%d): dense entry for absent arc", j1, j2)
				}
			default:
				if cls[j2] != c.Class[k] || w[j2] != c.Weight[k] {
					t.Fatalf("(%d,%d): dense (%d,%d), want (%d,%d)",
						j1, j2, cls[j2], w[j2], c.Class[k], c.Weight[k])
				}
			}
		}
	}
}

func TestBalancedShards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		l := adjacency.Build(randomCircuit(rng, n+1, 8*rng.Float64()))
		c := FromLists(l, nil)
		for _, parts := range []int{1, 2, 3, 7, 16} {
			bounds := c.BalancedShards(parts)
			if len(bounds) != parts+1 || bounds[0] != 0 || bounds[parts] != c.N {
				t.Fatalf("trial %d parts=%d: bad boundary frame %v", trial, parts, bounds)
			}
			total := int64(c.NNZ() + c.N)
			target := total / int64(parts)
			for s := 0; s < parts; s++ {
				if bounds[s] > bounds[s+1] {
					t.Fatalf("trial %d parts=%d: non-monotone bounds %v", trial, parts, bounds)
				}
				var mass int64
				var maxRow int64
				for j := bounds[s]; j < bounds[s+1]; j++ {
					w := int64(c.Degree(j)) + 1
					mass += w
					if w > maxRow {
						maxRow = w
					}
				}
				// A shard can exceed the ideal target by at most one row
				// (rows are indivisible).
				if mass > target+maxRow && parts > 1 {
					t.Fatalf("trial %d parts=%d shard %d: mass %d exceeds target %d + max row %d",
						trial, parts, s, mass, target, maxRow)
				}
			}
		}
	}
}

func TestBalancedShardsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := adjacency.Build(randomCircuit(rng, 100, 6))
	c := FromLists(l, nil)
	a, b := c.BalancedShards(7), c.BalancedShards(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("boundary %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRepResolveAndParse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sparse := FromLists(adjacency.Build(randomCircuit(rng, 100, 3)), nil)
	if got := sparse.Resolve(RepAuto, 0); got != RepSparse {
		t.Fatalf("auto on sparse matrix resolved to %v", got)
	}
	// A near-complete coupling graph resolves dense.
	c := &model.Circuit{Name: "full", Sizes: make([]int64, 12)}
	for j := range c.Sizes {
		c.Sizes[j] = 1
	}
	for j1 := 0; j1 < 12; j1++ {
		for j2 := j1 + 1; j2 < 12; j2++ {
			c.Wires = append(c.Wires, model.Wire{From: j1, To: j2, Weight: 1})
		}
	}
	full := FromLists(adjacency.Build(c), nil)
	if got := full.Resolve(RepAuto, 0); got != RepDense {
		t.Fatalf("auto on complete matrix resolved to %v", got)
	}
	// Explicit requests pass through; threshold overrides flip auto.
	if full.Resolve(RepSparse, 0) != RepSparse || sparse.Resolve(RepDense, 0) != RepDense {
		t.Fatal("explicit representation request did not pass through")
	}
	if sparse.Resolve(RepAuto, 1e-9) != RepDense {
		t.Fatal("tiny threshold should force dense")
	}

	for _, tc := range []struct {
		in   string
		want Rep
		ok   bool
	}{
		{"auto", RepAuto, true}, {"", RepAuto, true},
		{"sparse", RepSparse, true}, {"dense", RepDense, true},
		{"csr", RepAuto, false},
	} {
		got, err := ParseRep(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseRep(%q) = (%v, %v)", tc.in, got, err)
		}
	}
	if RepAuto.String() != "auto" || RepSparse.String() != "sparse" || RepDense.String() != "dense" {
		t.Fatal("Rep.String spelling drifted from the flag vocabulary")
	}
}

func TestDensity(t *testing.T) {
	empty := FromLists(adjacency.Build(&model.Circuit{Name: "e", Sizes: []int64{1}}), nil)
	if empty.Density() != 0 {
		t.Fatal("single-component density must be 0")
	}
	c := &model.Circuit{Name: "pair", Sizes: []int64{1, 1},
		Wires: []model.Wire{{From: 0, To: 1, Weight: 1}}}
	pair := FromLists(adjacency.Build(c), nil)
	if pair.Density() != 1 {
		t.Fatalf("fully-coupled pair density = %v, want 1", pair.Density())
	}
}
