// Package atomicio writes files atomically: content is produced into a
// temporary file in the destination's directory and renamed over the
// destination only after every byte (and the close) succeeded. A failed
// write, a full disk, or a process interrupt therefore never leaves a
// truncated or half-written file where a consumer expects a complete one —
// the destination either keeps its previous content or receives the new
// content whole. This is the same discipline the qbplint baseline writer
// established (internal/lint.Baseline.WriteFile), hoisted into a helper the
// CLIs share for every user-visible output (assignments, converted
// problems, generated instances).
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the output of emit to path atomically. The temporary
// file lives in path's directory so the final rename stays on one
// filesystem (rename is only atomic within a filesystem). On any error —
// from emit, from the underlying writes, or from the close — the temporary
// file is removed and the destination is left untouched.
func WriteFile(path string, emit func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	werr := emit(tmp)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}
