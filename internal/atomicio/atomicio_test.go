package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileSuccess: the destination receives exactly the emitted bytes
// and no temporary file survives.
func TestWriteFileSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Errorf("content = %q, want %q", got, "hello\n")
	}
	assertNoTempLitter(t, dir, "out.txt")
}

// TestWriteFileOverwrites: a successful write replaces previous content
// whole.
func TestWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old content, longer than the new"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Errorf("content = %q, want %q", got, "new")
	}
}

// TestWriteFileFailureLeavesDestination: the core bugfix contract — when
// the emitter fails partway (after having already produced some output),
// the existing destination keeps its previous bytes and the temporary file
// is cleaned up. Before this helper, cmd/qbpart -o and -convert and
// cmd/gencircuit -o all wrote through os.Create, so the same failure left
// a truncated file behind.
func TestWriteFileFailureLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	const original = "precious complete previous output\n"
	if err := os.WriteFile(path, []byte(original), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk exploded")
	err := WriteFile(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial garbage"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != original {
		t.Errorf("destination changed on failed write: %q, want %q", got, original)
	}
	assertNoTempLitter(t, dir, "out.txt")
}

// TestWriteFileFailureNoDestination: a failed write to a fresh path
// creates nothing at all.
func TestWriteFileFailureNoDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.txt")
	err := WriteFile(path, func(io.Writer) error { return errors.New("nope") })
	if err == nil {
		t.Fatal("want error")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Errorf("destination exists after failed write: %v", serr)
	}
	assertNoTempLitter(t, dir, "fresh.txt")
}

// TestWriteFileBadDirectory: an unwritable directory surfaces as an error
// without a panic.
func TestWriteFileBadDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.txt")
	if err := WriteFile(path, func(io.Writer) error { return nil }); err == nil {
		t.Fatal("want error for missing directory")
	}
}

// assertNoTempLitter fails when any .tmp* sibling of name remains in dir.
func assertNoTempLitter(t *testing.T, dir, name string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temporary file left behind: %s", e.Name())
		}
		if e.Name() != name && strings.HasPrefix(e.Name(), name) {
			t.Errorf("unexpected sibling: %s", e.Name())
		}
	}
}
