// Package qap solves the Quadratic Assignment Problem, the §2.2.3 special
// case of the partitioning formulation: M = N, unit sizes and capacities,
// no timing constraints, so the solution space is the set of permutations
// φ: components → locations, minimizing Σ flow[j1][j2]·dist[φ(j1)][φ(j2)].
//
// The solver is Burkard's original heuristic (§4.2): the same iterative
// linearization as the generalized partitioner, except that the STEP 4 and
// STEP 6 subproblems are Linear Assignment Problems, solved exactly by
// the Hungarian algorithm in package lap.
package qap

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/lap"
)

// Instance is a QAP: flow between components and distance between
// locations, both n×n with zero diagonals and non-negative entries.
type Instance struct {
	Flow [][]int64
	Dist [][]int64
}

// N returns the instance size.
func (in *Instance) N() int { return len(in.Flow) }

// Validate checks shapes and sign/diagonal invariants.
func (in *Instance) Validate() error {
	n := in.N()
	if n == 0 {
		return errors.New("qap: empty instance")
	}
	if len(in.Dist) != n {
		return errors.New("qap: flow and dist sizes differ")
	}
	for _, mat := range [][][]int64{in.Flow, in.Dist} {
		for i, row := range mat {
			if len(row) != n {
				return errors.New("qap: non-square matrix")
			}
			for k, v := range row {
				if v < 0 {
					return errors.New("qap: negative entry")
				}
				if i == k && v != 0 {
					return errors.New("qap: non-zero diagonal")
				}
			}
		}
	}
	return nil
}

// Cost evaluates Σ flow[j1][j2]·dist[perm[j1]][perm[j2]].
func (in *Instance) Cost(perm []int) int64 {
	var c int64
	for j1, p1 := range perm {
		frow := in.Flow[j1]
		drow := in.Dist[p1]
		for j2, p2 := range perm {
			c += frow[j2] * drow[p2]
		}
	}
	return c
}

// Options tunes Solve.
type Options struct {
	// Iterations is the Burkard iteration count; ≤ 0 means 100.
	Iterations int
	// Seed drives the random initial permutation.
	Seed int64
	// DisableOmegaInEta drops the ω term of equation (3) (ablation).
	DisableOmegaInEta bool
}

// Result is the outcome of a solve.
type Result struct {
	Perm       []int // Perm[j] = location of component j
	Cost       int64
	Iterations int
}

// Solve runs Burkard's heuristic.
func Solve(in *Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N()
	iterations := opts.Iterations
	if iterations <= 0 {
		iterations = 100
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	u := rng.Perm(n)
	prev := append([]int(nil), u...)
	stall := 0
	lastBest := int64(math.MaxInt64)

	// STEP 2: ω[(i,j)] = maxDist[i] · Σ_{j2} flow[j][j2] bounds the row sum
	// of Q over any permutation.
	maxDist := make([]int64, n)
	for i := range in.Dist {
		for _, v := range in.Dist[i] {
			if v > maxDist[i] {
				maxDist[i] = v
			}
		}
	}
	rowFlow := make([]int64, n)
	for j := range in.Flow {
		for _, v := range in.Flow[j] {
			rowFlow[j] += v
		}
	}
	omega := func(i, j int) float64 { return float64(rowFlow[j] * maxDist[i]) }

	best := append([]int(nil), u...)
	bestCost := in.Cost(u)

	eta := make([][]float64, n) // eta[j][i]: LAP orientation (rows = components)
	h := make([][]float64, n)
	for j := 0; j < n; j++ {
		eta[j] = make([]float64, n)
		h[j] = make([]float64, n)
	}

	performed := 0
	for k := 1; k <= iterations; k++ {
		// STEP 3: η[(i2,j2)] = Σ_{j1} flow[j1][j2]·dist[u[j1]][i2]
		// (+ ω at the current slot per equation 3); ξ = Σ ω at u.
		xi := 0.0
		for j2 := 0; j2 < n; j2++ {
			row := eta[j2]
			for i2 := range row {
				row[i2] = 0
			}
			for j1 := 0; j1 < n; j1++ {
				f := in.Flow[j1][j2]
				if f == 0 || j1 == j2 {
					continue
				}
				drow := in.Dist[u[j1]]
				ff := float64(f)
				for i2 := 0; i2 < n; i2++ {
					row[i2] += ff * float64(drow[i2])
				}
			}
			if !opts.DisableOmegaInEta {
				row[u[j2]] += omega(u[j2], j2)
			}
			xi += omega(u[j2], j2)
		}

		// STEP 4: z = min Σ η over permutations — an exact LAP.
		_, z, err := lap.Solve(eta)
		if err != nil {
			return nil, err
		}

		// STEP 5.
		denom := math.Abs(z - xi)
		if denom < 1 {
			denom = 1
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				h[j][i] += eta[j][i] / denom
			}
		}

		// STEP 6.
		next, _, err := lap.Solve(h)
		if err != nil {
			return nil, err
		}
		u = next
		performed = k

		// STEP 7.
		if c := in.Cost(u); c < bestCost {
			bestCost = c
			copy(best, u)
		}

		// Stall handling (as in the generalized solver): when the iterate
		// repeats or the incumbent stops improving, the averaged direction
		// h is pinned — reset it and kick the permutation with random
		// transpositions so the remaining budget keeps exploring.
		same := true
		for j := range u {
			if u[j] != prev[j] {
				same = false
				break
			}
		}
		if same || bestCost == lastBest {
			stall++
		} else {
			stall = 0
		}
		lastBest = bestCost
		copy(prev, u)
		if stall >= 4 {
			stall = 0
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					h[j][i] = 0
				}
			}
			for t := 0; t < 1+n/8; t++ {
				a, b := rng.Intn(n), rng.Intn(n)
				u[a], u[b] = u[b], u[a]
			}
		}
	}
	// Final polish: pairwise-transposition (2-opt) descent on the best
	// permutation found, the permutation-space analogue of the
	// generalized solver's final polish.
	twoOpt(in, best)
	if c := in.Cost(best); c < bestCost {
		bestCost = c
	}
	return &Result{Perm: best, Cost: bestCost, Iterations: performed}, nil
}

// twoOpt repeatedly applies cost-reducing transpositions until none exist,
// evaluating each candidate swap in O(n) with the standard QAP delta.
func twoOpt(in *Instance, perm []int) {
	n := len(perm)
	f, d := in.Flow, in.Dist
	delta := func(a, b int) int64 {
		p, q := perm[a], perm[b]
		var dl int64
		for k := 0; k < n; k++ {
			if k == a || k == b {
				continue
			}
			pk := perm[k]
			dl += (f[a][k] - f[b][k]) * (d[q][pk] - d[p][pk])
			dl += (f[k][a] - f[k][b]) * (d[pk][q] - d[pk][p])
		}
		dl += (f[a][b] - f[b][a]) * (d[q][p] - d[p][q])
		return dl
	}
	for improved := true; improved; {
		improved = false
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if delta(a, b) < 0 {
					perm[a], perm[b] = perm[b], perm[a]
					improved = true
				}
			}
		}
	}
}
