package qap

import (
	"math/rand"
	"testing"
)

// bruteForce enumerates all permutations (n ≤ 8).
func bruteForce(in *Instance) int64 {
	n := in.N()
	perm := make([]int, n)
	used := make([]bool, n)
	best := int64(-1)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			c := in.Cost(perm)
			if best < 0 || c < best {
				best = c
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			perm[j] = i
			rec(j + 1)
			used[i] = false
		}
	}
	rec(0)
	return best
}

func randomInstance(rng *rand.Rand, n int) *Instance {
	in := &Instance{Flow: make([][]int64, n), Dist: make([][]int64, n)}
	for i := 0; i < n; i++ {
		in.Flow[i] = make([]int64, n)
		in.Dist[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i == k {
				continue
			}
			if rng.Intn(2) == 0 {
				in.Flow[i][k] = rng.Int63n(9)
			}
			in.Dist[i][k] = 1 + rng.Int63n(5)
		}
	}
	return in
}

func TestValidate(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(1)), 4)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	in.Flow[1][1] = 3
	if err := in.Validate(); err == nil {
		t.Fatal("non-zero diagonal accepted")
	}
	in.Flow[1][1] = 0
	in.Dist[0][1] = -1
	if err := in.Validate(); err == nil {
		t.Fatal("negative entry accepted")
	}
	if err := (&Instance{}).Validate(); err == nil {
		t.Fatal("empty instance accepted")
	}
	bad := &Instance{Flow: in.Flow, Dist: in.Dist[:2]}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
}

func TestCostEvaluation(t *testing.T) {
	in := &Instance{
		Flow: [][]int64{{0, 2}, {1, 0}},
		Dist: [][]int64{{0, 3}, {4, 0}},
	}
	// perm = identity: 2·3 + 1·4 = 10; swapped: 2·4 + 1·3 = 11.
	if got := in.Cost([]int{0, 1}); got != 10 {
		t.Fatalf("Cost(identity) = %d, want 10", got)
	}
	if got := in.Cost([]int{1, 0}); got != 11 {
		t.Fatalf("Cost(swap) = %d, want 11", got)
	}
}

func TestSolveSmallOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hit := 0
	var sumRatio float64
	count := 0
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(3)
		in := randomInstance(rng, n)
		want := bruteForce(in)
		res, err := Solve(in, Options{Iterations: 120, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost < want {
			t.Fatalf("trial %d: heuristic %d beat brute force %d — cost bug", trial, res.Cost, want)
		}
		if got := in.Cost(res.Perm); got != res.Cost {
			t.Fatalf("trial %d: reported cost %d != recomputed %d", trial, res.Cost, got)
		}
		if res.Cost == want {
			hit++
		}
		if want > 0 {
			sumRatio += float64(res.Cost) / float64(want)
			count++
		}
		// Result must be a permutation.
		seen := make([]bool, n)
		for _, i := range res.Perm {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("trial %d: not a permutation: %v", trial, res.Perm)
			}
			seen[i] = true
		}
	}
	if hit < 18 {
		t.Fatalf("optimum hit in only %d/25 trials", hit)
	}
	if mean := sumRatio / float64(count); mean > 1.05 {
		t.Fatalf("mean ratio %0.3f; want ≤ 1.05", mean)
	}
}

func TestDeterminism(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(3)), 8)
	r1, err := Solve(in, Options{Iterations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(in, Options{Iterations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Fatalf("same seed, different costs %d vs %d", r1.Cost, r2.Cost)
	}
}

func TestOmegaAblation(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(5)), 7)
	want := bruteForce(in)
	res, err := Solve(in, Options{Iterations: 150, Seed: 1, DisableOmegaInEta: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < want {
		t.Fatalf("ablated heuristic %d beat brute force %d", res.Cost, want)
	}
}
