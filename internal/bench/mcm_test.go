package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestMCMExperimentShape: the §2.2.1 application — QBP legalizes the
// designer's layout with less size-weighted deviation than either
// interchange baseline, and every method ends feasible.
func TestMCMExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("MCM experiment takes seconds; skipped with -short")
	}
	rows, err := RunMCM(MCMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 perturbation rates", len(rows))
	}
	for _, r := range rows {
		if r.ViolationsStart == 0 && r.OverloadedStart == 0 {
			t.Errorf("rate %.0f%%: designer layout has nothing to legalize", 100*r.PerturbRate)
		}
		for name, m := range map[string]MCMResult{"QBP": r.QBP, "GFM": r.GFM, "GKL": r.GKL} {
			if !m.Feasible {
				t.Errorf("rate %.0f%%: %s result infeasible", 100*r.PerturbRate, name)
			}
		}
		if r.QBP.Deviation > r.GFM.Deviation || r.QBP.Deviation > r.GKL.Deviation {
			t.Errorf("rate %.0f%%: QBP deviation %d not best (GFM %d, GKL %d)",
				100*r.PerturbRate, r.QBP.Deviation, r.GFM.Deviation, r.GKL.Deviation)
		}
	}
}

func TestWriteMCMRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("MCM experiment takes seconds; skipped with -short")
	}
	var buf bytes.Buffer
	if err := WriteMCM(&buf, MCMConfig{PerturbRates: []float64{0.2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minimum deviation legalization") {
		t.Fatalf("rendering missing header:\n%s", buf.String())
	}
}

func TestRunMCMUnknownCircuit(t *testing.T) {
	if _, err := RunMCM(MCMConfig{Circuit: "nope"}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}
