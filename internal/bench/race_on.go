//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// assertions are skipped under instrumentation: the detector's overhead is
// not uniform across algorithms, so the paper's CPU-shape claim does not
// transfer.
const raceEnabled = true
