// Package bench reproduces the paper's evaluation (§5): the seven
// industrial circuits of Table I partitioned onto 16 slots under the total
// Manhattan wire-length metric, comparing QBP (100 iterations) against the
// two interchange baselines GFM (run to convergence) and GKL (cut off after
// 6 outer passes), without (Table II) and with (Table III) timing
// constraints. All three methods share one initial feasible solution
// produced, as in the paper, by QBP with the B matrix zeroed.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/kl"
	"repro/internal/model"
	"repro/internal/qbp"
	"repro/internal/validate"
)

// Config selects what to run.
type Config struct {
	// Timing false reproduces Table II (constraints relaxed), true
	// reproduces Table III.
	Timing bool
	// Circuits names the instances; nil means all seven paper circuits.
	Circuits []string
	// QBPIterations defaults to the paper's 100.
	QBPIterations int
	// KLMaxPasses defaults to the paper's cutoff of 6.
	KLMaxPasses int
	// Seed drives the initial-solution generation.
	Seed int64
	// Workers shards each QBP solve's inner loops; the reported numbers
	// are identical for any value (see qbp.Options.Workers).
	Workers int
}

// MethodResult is one method's outcome on one circuit.
type MethodResult struct {
	WireLength int64
	Improve    float64 // percent reduction from the start
	CPU        time.Duration
	Feasible   bool
}

// Row is one circuit's line of Table II or III.
type Row struct {
	Circuit string
	Start   int64
	QBP     MethodResult
	GFM     MethodResult
	GKL     MethodResult
}

func (c *Config) defaults() {
	if c.QBPIterations == 0 {
		c.QBPIterations = qbp.DefaultIterations
	}
	if c.KLMaxPasses == 0 {
		c.KLMaxPasses = kl.DefaultMaxPasses
	}
	if len(c.Circuits) == 0 {
		for _, s := range gen.Paper {
			c.Circuits = append(c.Circuits, s.Name)
		}
	}
}

// Run executes the experiment and returns one row per circuit.
func Run(cfg Config) ([]Row, error) {
	cfg.defaults()
	rows := make([]Row, 0, len(cfg.Circuits))
	for _, name := range cfg.Circuits {
		row, err := runCircuit(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunCircuit executes the three methods on one named circuit.
func runCircuit(name string, cfg Config) (Row, error) {
	in, err := gen.Named(name)
	if err != nil {
		return Row{}, err
	}
	p := in.Problem

	// The shared initial feasible solution (paper protocol: QBP with B=0).
	// It satisfies the timing constraints, so the same start serves both
	// the relaxed and the constrained tables — as in the paper, whose
	// start column is identical across Tables II and III.
	initial, err := qbp.FeasibleStart(context.Background(), p, cfg.Seed, 40)
	if err != nil {
		return Row{}, fmt.Errorf("initial solution: %w", err)
	}
	row := Row{Circuit: name, Start: p.WireLength(initial)}

	relax := !cfg.Timing

	t0 := time.Now()
	qres, err := qbp.Solve(context.Background(), p, qbp.Options{
		Iterations:  cfg.QBPIterations,
		Initial:     initial,
		RelaxTiming: relax,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	})
	if err != nil {
		return Row{}, fmt.Errorf("qbp: %w", err)
	}
	if row.QBP, err = result(p, qres.Assignment, row.Start, time.Since(t0), cfg.Timing); err != nil {
		return Row{}, fmt.Errorf("qbp: %w", err)
	}

	t0 = time.Now()
	fres, err := fm.Solve(context.Background(), p, initial, fm.Options{RelaxTiming: relax})
	if err != nil {
		return Row{}, fmt.Errorf("gfm: %w", err)
	}
	if row.GFM, err = result(p, fres.Assignment, row.Start, time.Since(t0), cfg.Timing); err != nil {
		return Row{}, fmt.Errorf("gfm: %w", err)
	}

	t0 = time.Now()
	kres, err := kl.Solve(context.Background(), p, initial, kl.Options{RelaxTiming: relax, MaxPasses: cfg.KLMaxPasses})
	if err != nil {
		return Row{}, fmt.Errorf("gkl: %w", err)
	}
	if row.GKL, err = result(p, kres.Assignment, row.Start, time.Since(t0), cfg.Timing); err != nil {
		return Row{}, fmt.Errorf("gkl: %w", err)
	}

	return row, nil
}

// result independently validates an assignment and fills a MethodResult. A
// structurally unusable assignment is a solver bug, reported as an error so
// one bad method run fails the experiment instead of crashing the process.
func result(p *model.Problem, a model.Assignment, start int64, cpu time.Duration, timing bool) (MethodResult, error) {
	rep, err := validate.Check(p, a)
	if err != nil {
		return MethodResult{}, fmt.Errorf("solver produced unusable assignment: %w", err)
	}
	feasible := rep.OverloadedCount == 0 && (!timing || len(rep.TimingViolations) == 0)
	return MethodResult{
		WireLength: rep.WireLength,
		Improve:    100 * (1 - float64(rep.WireLength)/float64(start)),
		CPU:        cpu,
		Feasible:   feasible,
	}, nil
}

// WriteTableI writes the circuit-description table.
func WriteTableI(w io.Writer) error {
	fmt.Fprintln(w, "I. circuit descriptions:")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-6s %15s %12s %25s\n", "ckt", "# of components", "# of wires", "# of Timing Constraints")
	for _, s := range gen.Paper {
		in, err := gen.Named(s.Name)
		if err != nil {
			return err
		}
		c := in.Problem.Circuit
		fmt.Fprintf(w, "%-6s %15d %12d %25d\n", s.Name, c.N(), c.TotalWireWeight(), len(c.Timing))
	}
	return nil
}

// WriteTable runs the experiment and writes it in the paper's layout.
func WriteTable(w io.Writer, cfg Config) error {
	rows, err := Run(cfg)
	if err != nil {
		return err
	}
	FormatRows(w, rows, cfg.Timing)
	return nil
}

// FormatRows renders rows in the paper's Table II/III layout.
func FormatRows(w io.Writer, rows []Row, timing bool) {
	if timing {
		fmt.Fprintln(w, "III. With Timing Constraints:")
	} else {
		fmt.Fprintln(w, "II. Without Timing Constraints:")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-9s %7s | %7s %6s %8s | %7s %6s %8s | %7s %6s %8s\n",
		"circuits", "start",
		"QBP", "(-%)", "cpu",
		"GFM", "(-%)", "cpu",
		"GKL", "(-%)", "cpu")
	fmt.Fprintln(w, strings.Repeat("-", 96))
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %7d | %7d %6.1f %8.1f | %7d %6.1f %8.1f | %7d %6.1f %8.1f\n",
			r.Circuit, r.Start,
			r.QBP.WireLength, r.QBP.Improve, r.QBP.CPU.Seconds(),
			r.GFM.WireLength, r.GFM.Improve, r.GFM.CPU.Seconds(),
			r.GKL.WireLength, r.GKL.Improve, r.GKL.CPU.Seconds())
	}
}
