package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/kl"
	"repro/internal/model"
	"repro/internal/qbp"
	"repro/internal/validate"
)

// MCMConfig drives the §2.2.1 application experiment: an engineer's manual
// TCM assignment with constraint violations must be legalized with minimum
// size-weighted Manhattan deviation — the PP(1,0) special case.
type MCMConfig struct {
	// Circuit names the instance (default cktb).
	Circuit string
	// PerturbRates are the fractions of components the "designer"
	// misplaces; one experiment row per rate. Default {0.1, 0.3, 0.5}.
	PerturbRates []float64
	// Seed drives the perturbation and the solvers.
	Seed int64
	// QBPIterations defaults to 150 (deviation objectives converge more
	// slowly than wire length).
	QBPIterations int
}

// MCMRow is one experiment row.
type MCMRow struct {
	PerturbRate     float64
	ViolationsStart int // violated timing constraints in the designer's layout
	OverloadedStart int // overloaded slots in the designer's layout
	QBP, GFM, GKL   MCMResult
}

// MCMResult is one method's legalization outcome.
type MCMResult struct {
	Deviation int64 // Σ size·Manhattan(final, initial) — the objective
	Moved     int   // components relocated from the designer's slots
	Feasible  bool
	CPU       time.Duration
}

func (c *MCMConfig) defaults() {
	if c.Circuit == "" {
		c.Circuit = "cktb"
	}
	if len(c.PerturbRates) == 0 {
		c.PerturbRates = []float64{0.1, 0.3, 0.5}
	}
	if c.QBPIterations == 0 {
		c.QBPIterations = 150
	}
}

// RunMCM executes the experiment and returns one row per perturbation rate.
func RunMCM(cfg MCMConfig) ([]MCMRow, error) {
	cfg.defaults()
	in, err := gen.Named(cfg.Circuit)
	if err != nil {
		return nil, err
	}
	base := in.Problem
	grid := in.Grid
	dist, err := grid.DistanceMatrix(geometry.Manhattan)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	rows := make([]MCMRow, 0, len(cfg.PerturbRates))
	for _, rate := range cfg.PerturbRates {
		// The designer's assignment: the golden layout with a fraction of
		// the blocks misplaced by intuition.
		initial := in.Golden.Clone()
		for j := range initial {
			if rng.Float64() < rate {
				initial[j] = rng.Intn(base.M())
			}
		}
		row := MCMRow{
			PerturbRate:     rate,
			ViolationsStart: base.CountTimingViolations(initial),
			OverloadedStart: len(base.CapacityViolations(initial)),
		}

		// PP(1,0): p[i][j] = size_j · Manhattan(i, initial(j)).
		linear := make([][]int64, base.M())
		for i := range linear {
			linear[i] = make([]int64, base.N())
			for j := range linear[i] {
				linear[i][j] = base.Circuit.Sizes[j] * dist[i][initial[j]]
			}
		}
		p, err := model.NewProblem(base.Circuit, base.Topology, 1, 0, linear)
		if err != nil {
			return nil, err
		}

		eval := func(a model.Assignment, cpu time.Duration) (MCMResult, error) {
			rep, verr := validate.Check(p, a)
			if verr != nil {
				return MCMResult{}, fmt.Errorf("unusable MCM assignment: %w", verr)
			}
			moved := 0
			for j := range a {
				if a[j] != initial[j] {
					moved++
				}
			}
			return MCMResult{
				Deviation: rep.LinearCost,
				Moved:     moved,
				Feasible:  rep.Feasible,
				CPU:       cpu,
			}, nil
		}

		// All three methods share one feasible start, as in the paper's
		// protocol (for PP(1,0) the B matrix is unused, so the B=0 run is
		// just "find any legal low-deviation layout").
		start, err := qbp.FeasibleStart(context.Background(), p, cfg.Seed, 40)
		if err != nil {
			return nil, fmt.Errorf("initial solution: %w", err)
		}

		t0 := time.Now()
		qres, err := qbp.Solve(context.Background(), p, qbp.Options{Iterations: cfg.QBPIterations, Seed: cfg.Seed, Initial: start})
		if err != nil {
			return nil, fmt.Errorf("qbp: %w", err)
		}
		if row.QBP, err = eval(qres.Assignment, time.Since(t0)); err != nil {
			return nil, fmt.Errorf("qbp: %w", err)
		}

		t0 = time.Now()
		fres, err := fm.Solve(context.Background(), p, start, fm.Options{})
		if err != nil {
			return nil, fmt.Errorf("gfm: %w", err)
		}
		if row.GFM, err = eval(fres.Assignment, time.Since(t0)); err != nil {
			return nil, fmt.Errorf("gfm: %w", err)
		}

		t0 = time.Now()
		kres, err := kl.Solve(context.Background(), p, start, kl.Options{})
		if err != nil {
			return nil, fmt.Errorf("gkl: %w", err)
		}
		if row.GKL, err = eval(kres.Assignment, time.Since(t0)); err != nil {
			return nil, fmt.Errorf("gkl: %w", err)
		}

		rows = append(rows, row)
	}
	return rows, nil
}

// WriteMCM runs the experiment and renders it.
func WriteMCM(w io.Writer, cfg MCMConfig) error {
	rows, err := RunMCM(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "MCM/TCM re-partitioning (PP(1,0), §2.2.1): minimum deviation legalization")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%8s %10s %9s | %9s %6s %8s | %9s %6s %8s | %9s %6s %8s\n",
		"perturb", "violations", "overload",
		"QBP dev", "moved", "cpu",
		"GFM dev", "moved", "cpu",
		"GKL dev", "moved", "cpu")
	for _, r := range rows {
		fmt.Fprintf(w, "%7.0f%% %10d %9d | %9d %6d %7.1fs | %9d %6d %7.1fs | %9d %6d %7.1fs\n",
			100*r.PerturbRate, r.ViolationsStart, r.OverloadedStart,
			r.QBP.Deviation, r.QBP.Moved, r.QBP.CPU.Seconds(),
			r.GFM.Deviation, r.GFM.Moved, r.GFM.CPU.Seconds(),
			r.GKL.Deviation, r.GKL.Moved, r.GKL.CPU.Seconds())
	}
	return nil
}
