package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/model"
	"repro/internal/qbp"
)

// TestScalesBeyondPaperSizes: the paper's motivation for the sparse
// enhancement is handling "hundreds or thousands of components". A
// 2000-component instance (3× the largest Table I circuit) must solve
// well within interactive time.
func TestScalesBeyondPaperSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test takes seconds; skipped with -short")
	}
	in, err := gen.Generate(gen.Params{
		Spec: gen.Spec{
			Name:              "big",
			Components:        2000,
			Wires:             16000,
			TimingConstraints: 9000,
			Seed:              77,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := in.Problem
	start, err := qbp.FeasibleStart(context.Background(), p, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := qbp.Solve(context.Background(), p, qbp.Options{Iterations: 100, Initial: start})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(t0)
	if !res.Feasible {
		t.Fatalf("infeasible on the scale instance (%d violations)", res.TimingViolations)
	}
	if res.WireLength >= p.WireLength(start) {
		t.Fatalf("no improvement at scale: %d vs start %d", res.WireLength, p.WireLength(start))
	}
	if elapsed > 2*time.Minute {
		t.Fatalf("100 iterations took %v on N=2000; the sparse enhancement is not working", elapsed)
	}
	t.Logf("N=2000: start %d → final %d (%.1f%%) in %v",
		p.WireLength(start), res.WireLength,
		100*(1-float64(res.WireLength)/float64(p.WireLength(start))), elapsed)
}

// TestAlternativeCostMetrics exercises the formulation's claimed
// generality (§2.1): "this term can be used to model any type of
// interconnection cost metrics" — total crossings (B all-ones off
// diagonal) and quadratic wire length (squared Euclidean B), with the
// Manhattan delay model unchanged.
func TestAlternativeCostMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("metric sweep takes seconds; skipped with -short")
	}
	base := gen.MustNamed("cktb")
	grid := base.Grid
	for _, metric := range []geometry.Metric{geometry.UnitCrossing, geometry.SquaredEuclidean} {
		cost, err := grid.DistanceMatrix(metric)
		if err != nil {
			t.Fatal(err)
		}
		topo := &model.Topology{
			Capacities: base.Problem.Topology.Capacities,
			Cost:       cost,
			Delay:      base.Problem.Topology.Delay, // delays stay Manhattan
		}
		p, err := model.NewProblem(base.Problem.Circuit, topo, 0, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		start, err := qbp.FeasibleStart(context.Background(), p, 0, 40)
		if err != nil {
			t.Fatalf("%v: %v", metric, err)
		}
		res, err := qbp.Solve(context.Background(), p, qbp.Options{Iterations: 60, Initial: start})
		if err != nil {
			t.Fatalf("%v: %v", metric, err)
		}
		if !res.Feasible {
			t.Fatalf("%v: infeasible result", metric)
		}
		if res.WireLength >= p.WireLength(start) {
			t.Fatalf("%v: no improvement (%d vs %d)", metric, res.WireLength, p.WireLength(start))
		}
	}
}
