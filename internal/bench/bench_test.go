package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/qbp"
)

// TestFeasibleStartsAllCircuits: the paper's initial-solution protocol must
// succeed quickly on every circuit ("this will generate an initial feasible
// solution in a few iterations").
func TestFeasibleStartsAllCircuits(t *testing.T) {
	for _, s := range gen.Paper {
		in := gen.MustNamed(s.Name)
		a, err := qbp.FeasibleStart(context.Background(), in.Problem, 0, 40)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := in.Problem.CheckFeasible(a); err != nil {
			t.Fatalf("%s: start infeasible: %v", s.Name, err)
		}
	}
}

func TestWriteTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range gen.Paper {
		if !strings.Contains(out, s.Name) {
			t.Fatalf("table I missing %s:\n%s", s.Name, out)
		}
	}
	if !strings.Contains(out, "8200") || !strings.Contains(out, "11545") {
		t.Fatalf("table I missing published statistics:\n%s", out)
	}
}

// TestTableShape runs a two-circuit subset of Tables II and III and asserts
// the qualitative findings the paper reports: every method improves on the
// shared start, results are feasible, and under timing constraints QBP
// beats GFM (whose admissible moves dry up first).
func TestTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment subset takes seconds; skipped with -short")
	}
	for _, timing := range []bool{false, true} {
		rows, err := Run(Config{Timing: timing, Circuits: []string{"ckta", "ckte"}})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			for name, m := range map[string]MethodResult{"QBP": r.QBP, "GFM": r.GFM, "GKL": r.GKL} {
				if !m.Feasible {
					t.Errorf("timing=%v %s: %s result infeasible", timing, r.Circuit, name)
				}
				if m.WireLength >= r.Start {
					t.Errorf("timing=%v %s: %s did not improve (%d >= %d)", timing, r.Circuit, name, m.WireLength, r.Start)
				}
				if m.Improve <= 0 {
					t.Errorf("timing=%v %s: %s non-positive improvement", timing, r.Circuit, name)
				}
			}
			if timing && r.QBP.WireLength >= r.GFM.WireLength {
				t.Errorf("%s: QBP (%d) should beat GFM (%d) under timing constraints",
					r.Circuit, r.QBP.WireLength, r.GFM.WireLength)
			}
		}
	}
}

// TestFullTables regenerates Tables II and III on all seven circuits (the
// complete §5 experiment). It prints the tables and checks the aggregate
// shape: QBP delivers the best average quality, GFM the least CPU, GKL the
// most CPU.
func TestFullTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full tables take ~30s; skipped with -short")
	}
	for _, timing := range []bool{false, true} {
		rows, err := Run(Config{Timing: timing})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		FormatRows(&buf, rows, timing)
		t.Logf("\n%s", buf.String())

		var qbpPct, gfmPct, gklPct float64
		var qbpCPU, gfmCPU, gklCPU float64
		for _, r := range rows {
			qbpPct += r.QBP.Improve
			gfmPct += r.GFM.Improve
			gklPct += r.GKL.Improve
			qbpCPU += r.QBP.CPU.Seconds()
			gfmCPU += r.GFM.CPU.Seconds()
			gklCPU += r.GKL.CPU.Seconds()
			if !r.QBP.Feasible || !r.GFM.Feasible || !r.GKL.Feasible {
				t.Errorf("timing=%v %s: infeasible result", timing, r.Circuit)
			}
		}
		n := float64(len(rows))
		if qbpPct/n <= gfmPct/n || qbpPct/n <= gklPct/n {
			t.Errorf("timing=%v: QBP mean improvement %.1f%% should exceed GFM %.1f%% and GKL %.1f%%",
				timing, qbpPct/n, gfmPct/n, gklPct/n)
		}
		// The detector's overhead is not uniform across the three
		// algorithms, so the paper's CPU-shape claim only holds
		// uninstrumented.
		if !raceEnabled && (gfmCPU >= qbpCPU || qbpCPU >= gklCPU) {
			t.Errorf("timing=%v: CPU ordering GFM (%.1fs) < QBP (%.1fs) < GKL (%.1fs) violated",
				timing, gfmCPU, qbpCPU, gklCPU)
		}
	}
}

func TestRunUnknownCircuit(t *testing.T) {
	if _, err := Run(Config{Circuits: []string{"nope"}}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}
