package interrupt

import (
	"context"
	"testing"
)

func TestZeroValueNeverStops(t *testing.T) {
	var c Checker
	for i := 0; i < 10_000; i++ {
		if c.Stop() || c.Now() {
			t.Fatal("zero-value Checker stopped")
		}
	}
	if c.Stopped() {
		t.Fatal("zero-value Checker reports stopped")
	}
}

func TestBackgroundNeverStops(t *testing.T) {
	c := New(context.Background(), 4)
	for i := 0; i < 1000; i++ {
		if c.Stop() {
			t.Fatal("background context stopped")
		}
	}
	if c.Now() {
		t.Fatal("Now stopped on background context")
	}
}

func TestAmortizedDetection(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 8)
	cancel()
	// The first polls inside the amortization window must not fire...
	for i := 0; i < 7; i++ {
		if c.Stop() {
			t.Fatalf("stopped after %d calls, before the poll interval", i+1)
		}
	}
	// ...the 8th call polls and detects the cancellation.
	if !c.Stop() {
		t.Fatal("not stopped at the poll boundary")
	}
	if !c.Stopped() {
		t.Fatal("Stopped not sticky")
	}
	// Sticky: stays stopped forever after.
	if !c.Stop() || !c.Now() {
		t.Fatal("stop state did not stick")
	}
}

func TestNowBypassesAmortization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 1<<20)
	if c.Now() {
		t.Fatal("stopped before cancellation")
	}
	cancel()
	if !c.Now() {
		t.Fatal("Now missed the cancellation")
	}
}

func TestDefaultEvery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := New(ctx, 0)
	if c.every != DefaultEvery {
		t.Fatalf("every = %d, want %d", c.every, DefaultEvery)
	}
}

func BenchmarkStopFastPath(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := New(ctx, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Stop() {
			b.Fatal("unexpected stop")
		}
	}
}
