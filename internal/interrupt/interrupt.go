// Package interrupt is the cooperative-cancellation primitive shared by the
// solvers: an amortized poll of a context.Context that costs one counter
// increment on the fast path and performs no allocation, so it can sit at
// the iteration boundaries of hot loops without disturbing the kernels
// (which stay branch-free — checks live one level up, at pass/stage/node
// granularity).
//
// The contract every solver implements with it:
//
//   - a context that is already cancelled at solve entry returns ctx.Err()
//     immediately (no work, no partial result);
//   - a context cancelled mid-solve makes the solver stop at the next
//     check, keep its best feasible incumbent so far, and return it with
//     the result's Stopped marker set instead of an error;
//   - a context that never fires leaves the solve bit-identical to a solve
//     without one — the poll only reads, never perturbs.
package interrupt

import "context"

// DefaultEvery is the poll interval used when a Checker is built with
// every ≤ 0: one context poll per 256 Stop calls keeps the detection
// latency far below any realistic deadline while making the amortized cost
// of a check a single integer compare.
const DefaultEvery = 256

// Checker polls a context's cancellation status at an amortized rate. The
// zero value (and a nil context) never stops. Checker is a plain value —
// create it on the stack or embed it in a solver struct; it must not be
// shared between goroutines.
type Checker struct {
	ctx     context.Context
	every   uint32
	n       uint32
	stopped bool
}

// New returns a Checker polling ctx once per every calls to Stop
// (every ≤ 0 means DefaultEvery). A nil ctx yields a Checker that never
// stops, so callers can thread one unconditionally.
func New(ctx context.Context, every int) Checker {
	e := uint32(DefaultEvery)
	if every > 0 {
		e = uint32(every)
	}
	return Checker{ctx: ctx, every: e}
}

// Stop reports whether the solve should stop, polling the context once per
// `every` calls. Once true it stays true (sticky) and polling ceases.
func (c *Checker) Stop() bool {
	if c.stopped {
		return true
	}
	if c.ctx == nil {
		return false
	}
	if c.n++; c.n < c.every {
		return false
	}
	c.n = 0
	c.stopped = c.ctx.Err() != nil
	return c.stopped
}

// Now polls the context immediately, bypassing the amortization. Use at
// coarse boundaries (outer iterations, passes, phases) where one poll per
// visit is already cheap.
func (c *Checker) Now() bool {
	if c.stopped {
		return true
	}
	if c.ctx == nil {
		return false
	}
	c.stopped = c.ctx.Err() != nil
	return c.stopped
}

// Stopped reports the sticky state from the last poll without polling
// again — the cheap read for "did we end early?" result marking.
func (c *Checker) Stopped() bool { return c.stopped }
