// Package gains maintains an incremental move-delta table over a working
// assignment: for every component j and target partition t it tracks the
// exact objective change of moving j to t, updating only the affected rows
// after each move or swap. It also answers capacity (C1) and timing (C2)
// admissibility queries. Both interchange baselines of the paper's §5 — GFM
// (single moves, M−1 gain entries per component) and GKL (pair swaps) — are
// built on this table.
//
// All deltas are in objective units of the normalized PP(1,1) problem:
// the quadratic term counts each wire in both directions
// (w·(b[i1][i2]+b[i2][i1])), plus the linear term.
package gains

import (
	"fmt"

	"repro/internal/adjacency"
	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/sparsemat"
)

// Table is the incremental state. Create with New; mutate only through
// Apply and ApplySwap.
type Table struct {
	p     *model.Problem     // normalized PP(1,1)
	csr   *sparsemat.CSR     // flattened coupling rows (weights + timing bounds)
	u     []int              // current assignment
	loads []int64            // per-partition load
	memb  *bitset.Membership // per-partition membership bitsets over u
	delta [][]int64          // delta[j][t] = objective change of moving j to t
	obj   int64              // current objective, maintained incrementally
}

// New builds a table over a copy of the initial assignment. The problem is
// normalized internally; initial must be a complete in-range assignment.
func New(p *model.Problem, adj *adjacency.Lists, initial model.Assignment) (*Table, error) {
	p = p.Normalized()
	if len(initial) != p.N() || !initial.Valid(p.M()) {
		return nil, fmt.Errorf("gains: initial assignment invalid (len %d, want %d complete in-range entries)", len(initial), p.N())
	}
	t := &Table{
		p:     p,
		csr:   sparsemat.FromLists(adj, nil),
		u:     append([]int(nil), initial...),
		loads: p.Loads(initial),
		memb:  bitset.NewMembership(p.M(), p.N()),
		delta: make([][]int64, p.N()),
		obj:   p.Objective(initial),
	}
	t.memb.Build(t.u)
	for j := range t.delta {
		t.delta[j] = make([]int64, p.M())
		t.recompute(j)
	}
	return t, nil
}

// Assignment returns a copy of the current assignment.
func (t *Table) Assignment() model.Assignment {
	return append(model.Assignment(nil), t.u...)
}

// Partition returns the current partition of component j.
func (t *Table) Partition(j int) int { return t.u[j] }

// Objective returns the current objective value.
func (t *Table) Objective() int64 { return t.obj }

// Load returns the current load of partition i.
func (t *Table) Load(i int) int64 { return t.loads[i] }

// Size returns the number of components currently in partition i — one
// popcount over the packed membership words, not an O(N) assignment scan.
func (t *Table) Size(i int) int { return t.memb.Count(i) }

// Members returns partition i's membership bitset (bit j ⇔ Partition(j)
// == i), maintained incrementally by Apply/ApplySwap. Callers use it for
// word-skip partner scans (e.g. GKL's "every unlocked pair in different
// partitions") and must not mutate it.
func (t *Table) Members(i int) *bitset.Set { return t.memb.Part(i) }

// Delta returns the objective change of moving component j to partition to
// (0 when to is j's current partition).
func (t *Table) Delta(j, to int) int64 { return t.delta[j][to] }

// DeltaRow returns component j's full gain row (length M, indexed by
// target partition) — the backing array, valid until the next Apply or
// ApplySwap and not to be mutated. Selection scans that compare all M
// alternatives use it to pay the row indirection once per component
// instead of once per (component, partition) probe.
func (t *Table) DeltaRow(j int) []int64 { return t.delta[j] }

// Boundary overwrites dst (capacity ≥ N) with the current boundary set:
// bit j ⇔ some wire of j crosses partitions under the current assignment.
// Interior components can still carry nonzero deltas (linear preferences,
// same-partition diagonal couplings), so boundary restriction is a search
// heuristic, not an exact filter — the multi-level uncoarsening pass uses
// it to confine refinement to the projection seams.
func (t *Table) Boundary(dst *bitset.Set) {
	dst.Reset()
	cs := t.csr
	for j := 0; j < t.p.N(); j++ {
		lo, hi := cs.Row(j)
		for k := lo; k < hi; k++ {
			if cs.Weight[k] != 0 && t.u[cs.Col[k]] != t.u[j] {
				dst.Set(j)
				break
			}
		}
	}
}

// bp returns b[x][y] + b[y][x], the both-direction cost coupling.
func (t *Table) bp(x, y int) int64 {
	b := t.p.Topology.Cost
	return b[x][y] + b[y][x]
}

// recompute rebuilds row j of the delta table from scratch:
// delta[j][to] = lin(to,j) − lin(s,j) + Σ_arcs w·(bp(to,i2) − bp(s,i2)).
func (t *Table) recompute(j int) {
	s := t.u[j]
	row := t.delta[j]
	m := t.p.M()
	for to := 0; to < m; to++ {
		row[to] = t.p.LinearAt(to, j) - t.p.LinearAt(s, j)
	}
	cs := t.csr
	lo, hi := cs.Row(j)
	for k := lo; k < hi; k++ {
		w := cs.Weight[k]
		if w == 0 {
			continue // timing-only arc: no cost coupling
		}
		i2 := t.u[cs.Col[k]]
		base := w * t.bp(s, i2)
		for to := 0; to < m; to++ {
			row[to] += w*t.bp(to, i2) - base
		}
	}
	row[s] = 0
}

// refreshAround recomputes row j and the rows of all wire neighbors of j
// (timing-only neighbors have no cost coupling, so their rows are
// unaffected).
func (t *Table) refreshAround(j int) {
	t.recompute(j)
	cs := t.csr
	lo, hi := cs.Row(j)
	for k := lo; k < hi; k++ {
		if cs.Weight[k] != 0 {
			t.recompute(int(cs.Col[k]))
		}
	}
}

// CapacityOK reports whether moving j to partition to keeps C1.
func (t *Table) CapacityOK(j, to int) bool {
	if to == t.u[j] {
		return true
	}
	return t.loads[to]+t.p.Circuit.Sizes[j] <= t.p.Topology.Capacities[to]
}

// TimingOK reports whether component j placed on partition to satisfies
// every timing constraint against the current positions of its partners
// (both delay directions, matching the symmetric constraint reading).
func (t *Table) TimingOK(j, to int) bool {
	d := t.p.Topology.Delay
	cs := t.csr
	lo, hi := cs.Row(j)
	for k := lo; k < hi; k++ {
		md := cs.MaxDelay[k]
		if md == model.Unconstrained {
			continue
		}
		o := t.u[cs.Col[k]]
		if d[to][o] > md || d[o][to] > md {
			return false
		}
	}
	return true
}

// MoveOK reports whether moving j to partition to keeps both C1 and C2.
func (t *Table) MoveOK(j, to int) bool {
	return t.CapacityOK(j, to) && t.TimingOK(j, to)
}

// Apply moves component j to partition to, updating the objective, the
// loads and the affected delta rows. It does not check admissibility.
func (t *Table) Apply(j, to int) {
	s := t.u[j]
	if s == to {
		return
	}
	t.obj += t.delta[j][to]
	t.loads[s] -= t.p.Circuit.Sizes[j]
	t.loads[to] += t.p.Circuit.Sizes[j]
	t.u[j] = to
	t.memb.Move(j, s, to)
	t.refreshAround(j)
}

// SwapDelta returns the objective change of exchanging the partitions of j1
// and j2. Per Kernighan–Lin, the direct coupling between the pair must be
// corrected: the two single-move deltas each assume the partner stays put,
// double-counting the shared wire, so 2·w·bp(s1,s2) is added back (the wire
// between them keeps its length under a swap).
func (t *Table) SwapDelta(j1, j2 int) int64 {
	s1, s2 := t.u[j1], t.u[j2]
	if s1 == s2 {
		return 0
	}
	d := t.delta[j1][s2] + t.delta[j2][s1]
	if w := t.csr.WireWeight(j1, j2); w != 0 {
		d += 2 * w * t.bp(s1, s2)
	}
	return d
}

// SwapCapacityOK reports whether exchanging j1 and j2 keeps C1.
func (t *Table) SwapCapacityOK(j1, j2 int) bool {
	s1, s2 := t.u[j1], t.u[j2]
	if s1 == s2 {
		return true
	}
	sz1, sz2 := t.p.Circuit.Sizes[j1], t.p.Circuit.Sizes[j2]
	return t.loads[s1]-sz1+sz2 <= t.p.Topology.Capacities[s1] &&
		t.loads[s2]-sz2+sz1 <= t.p.Topology.Capacities[s2]
}

// SwapTimingOK reports whether exchanging j1 and j2 keeps C2, accounting
// for both components moving simultaneously.
func (t *Table) SwapTimingOK(j1, j2 int) bool {
	s1, s2 := t.u[j1], t.u[j2]
	if s1 == s2 {
		return true
	}
	d := t.p.Topology.Delay
	cs := t.csr
	check := func(j, to, partner, partnerTo int) bool {
		lo, hi := cs.Row(j)
		for k := lo; k < hi; k++ {
			md := cs.MaxDelay[k]
			if md == model.Unconstrained {
				continue
			}
			other := int(cs.Col[k])
			o := t.u[other]
			if other == partner {
				o = partnerTo
			}
			if d[to][o] > md || d[o][to] > md {
				return false
			}
		}
		return true
	}
	return check(j1, s2, j2, s1) && check(j2, s1, j1, s2)
}

// SwapOK reports whether exchanging j1 and j2 keeps both C1 and C2.
func (t *Table) SwapOK(j1, j2 int) bool {
	return t.SwapCapacityOK(j1, j2) && t.SwapTimingOK(j1, j2)
}

// ApplySwap exchanges the partitions of j1 and j2, updating the objective,
// loads and affected delta rows. It does not check admissibility.
func (t *Table) ApplySwap(j1, j2 int) {
	s1, s2 := t.u[j1], t.u[j2]
	if s1 == s2 {
		return
	}
	t.obj += t.SwapDelta(j1, j2)
	sz1, sz2 := t.p.Circuit.Sizes[j1], t.p.Circuit.Sizes[j2]
	t.loads[s1] += sz2 - sz1
	t.loads[s2] += sz1 - sz2
	t.u[j1], t.u[j2] = s2, s1
	t.memb.Move(j1, s1, s2)
	t.memb.Move(j2, s2, s1)
	t.refreshAround(j1)
	t.refreshAround(j2)
}
