package gains

import (
	"math/rand"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func newTable(t *testing.T, p *model.Problem, a model.Assignment) *Table {
	t.Helper()
	tb, err := New(p, adjacency.Build(p.Normalized().Circuit), a)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewRejectsBadInitial(t *testing.T) {
	p := paperex.MustNew()
	adj := adjacency.Build(p.Circuit)
	if _, err := New(p, adj, model.Assignment{0, 1}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := New(p, adj, model.Assignment{0, 1, 9}); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestDeltaMatchesRecomputedObjective(t *testing.T) {
	p := paperex.MustNew()
	a := model.Assignment{0, 1, 3}
	tb := newTable(t, p, a)
	if tb.Objective() != p.Objective(a) {
		t.Fatalf("initial objective %d != %d", tb.Objective(), p.Objective(a))
	}
	for j := 0; j < p.N(); j++ {
		for to := 0; to < p.M(); to++ {
			b := a.Clone()
			b[j] = to
			want := p.Objective(b) - p.Objective(a)
			if got := tb.Delta(j, to); got != want {
				t.Fatalf("Delta(%d,%d) = %d, want %d", j, to, got, want)
			}
		}
	}
}

func TestSwapDeltaMatchesRecomputed(t *testing.T) {
	p := paperex.MustNew()
	a := model.Assignment{0, 1, 3}
	tb := newTable(t, p, a)
	for j1 := 0; j1 < p.N(); j1++ {
		for j2 := j1 + 1; j2 < p.N(); j2++ {
			b := a.Clone()
			b[j1], b[j2] = b[j2], b[j1]
			want := p.Objective(b) - p.Objective(a)
			if got := tb.SwapDelta(j1, j2); got != want {
				t.Fatalf("SwapDelta(%d,%d) = %d, want %d", j1, j2, got, want)
			}
		}
	}
}

// Property test: after a long random sequence of moves and swaps, the
// incrementally maintained objective, loads and every delta entry agree
// with from-scratch recomputation.
func TestIncrementalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		cfg := testgen.Config{N: 5 + rng.Intn(6), WithLinear: trial%2 == 0}
		p, golden := testgen.Random(rng, cfg)
		tb := newTable(t, p, golden)
		norm := p.Normalized()
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				j := rng.Intn(p.N())
				to := rng.Intn(p.M())
				tb.Apply(j, to)
			} else {
				j1, j2 := rng.Intn(p.N()), rng.Intn(p.N())
				if j1 != j2 {
					tb.ApplySwap(j1, j2)
				}
			}
		}
		a := tb.Assignment()
		if got, want := tb.Objective(), norm.Objective(a); got != want {
			t.Fatalf("trial %d: objective %d != recomputed %d", trial, got, want)
		}
		loads := norm.Loads(a)
		for i := range loads {
			if tb.Load(i) != loads[i] {
				t.Fatalf("trial %d: load[%d] %d != %d", trial, i, tb.Load(i), loads[i])
			}
		}
		for j := 0; j < p.N(); j++ {
			if tb.Partition(j) != a[j] {
				t.Fatalf("trial %d: Partition(%d) inconsistent", trial, j)
			}
			for to := 0; to < p.M(); to++ {
				b := a.Clone()
				b[j] = to
				want := norm.Objective(b) - norm.Objective(a)
				if got := tb.Delta(j, to); got != want {
					t.Fatalf("trial %d: Delta(%d,%d) = %d, want %d", trial, j, to, got, want)
				}
			}
		}
	}
}

func TestAdmissibilityChecks(t *testing.T) {
	p := paperex.MustNew() // unit sizes, unit capacities, D_C(a,b)=D_C(b,c)=1
	a := model.Assignment{0, 1, 3}
	tb := newTable(t, p, a)
	// Moving a onto b's partition violates capacity.
	if tb.CapacityOK(paperex.A, 1) {
		t.Fatal("capacity violation not detected")
	}
	// Moving a to partition 3 (index 2... partition index 2 is slot 3 in the
	// paper's 1-based naming) puts it at distance 2 from b: timing violation.
	if tb.TimingOK(paperex.A, 2) {
		t.Fatal("timing violation not detected")
	}
	// The only free partition is index 2 (slot 3); b may move there
	// (distance 1 to both a at slot 1 and c at slot 4), but c may not
	// (distance 2 to b at slot 2).
	if !tb.MoveOK(paperex.B, 2) {
		t.Fatal("legal move rejected")
	}
	if tb.MoveOK(paperex.C, 2) {
		t.Fatal("timing-violating move accepted")
	}
	// Swapping a and b keeps capacities (unit sizes) but breaks timing:
	// b lands on slot 1, distance 2 from c at slot 4.
	if !tb.SwapCapacityOK(paperex.A, paperex.B) {
		t.Fatal("unit-size swap should keep capacity")
	}
	if tb.SwapTimingOK(paperex.A, paperex.B) {
		t.Fatal("swap timing violation not detected")
	}
	if tb.SwapOK(paperex.A, paperex.B) {
		t.Fatal("SwapOK must combine both checks")
	}
	// Swapping a and c is fully legal: a lands on slot 4 (distance 1 to b),
	// c lands on slot 1 (distance 1 to b).
	if !tb.SwapOK(paperex.A, paperex.C) {
		t.Fatal("legal swap rejected")
	}
}

// Swapping two components that share a wire must leave that wire's
// contribution unchanged — the KL correction term in action.
func TestSwapDeltaDirectCoupling(t *testing.T) {
	p := paperex.MustNew()
	a := model.Assignment{0, 1, 2}
	tb := newTable(t, p, a)
	b := a.Clone()
	b[paperex.A], b[paperex.B] = b[paperex.B], b[paperex.A]
	want := p.Objective(b) - p.Objective(a)
	if got := tb.SwapDelta(paperex.A, paperex.B); got != want {
		t.Fatalf("SwapDelta = %d, want %d", got, want)
	}
	// Same-partition swap is a no-op.
	tb2 := newTable(t, p, model.Assignment{1, 1, 2})
	if got := tb2.SwapDelta(0, 1); got != 0 {
		t.Fatalf("same-partition SwapDelta = %d, want 0", got)
	}
}

// Property: starting from a feasible state, SwapOK(j1,j2) must agree
// exactly with checking the swapped assignment from first principles, and
// MoveOK(j,to) likewise. This pins down the partner-destination handling in
// the swap timing check.
func TestAdmissibilityMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		p, golden := testgen.Random(rng, testgen.Config{N: 6, TimingProb: 0.5, CapSlack: 1.2})
		norm := p.Normalized()
		if !norm.Feasible(golden) {
			t.Fatalf("trial %d: golden start infeasible", trial)
		}
		tb := newTable(t, p, golden)
		for j := 0; j < p.N(); j++ {
			for to := 0; to < p.M(); to++ {
				b := golden.Clone()
				b[j] = to
				if got, want := tb.MoveOK(j, to), norm.Feasible(b); got != want {
					t.Fatalf("trial %d: MoveOK(%d,%d) = %v, model says %v", trial, j, to, got, want)
				}
			}
		}
		for j1 := 0; j1 < p.N(); j1++ {
			for j2 := j1 + 1; j2 < p.N(); j2++ {
				b := golden.Clone()
				b[j1], b[j2] = b[j2], b[j1]
				if got, want := tb.SwapOK(j1, j2), norm.Feasible(b); got != want {
					t.Fatalf("trial %d: SwapOK(%d,%d) = %v, model says %v", trial, j1, j2, got, want)
				}
			}
		}
	}
}

// TestMembershipMaintained drives random Apply/ApplySwap sequences and
// checks the popcount partition sizes and membership bitsets against a
// plain recount of the assignment after every mutation.
func TestMembershipMaintained(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		cfg := testgen.Config{N: 8 + rng.Intn(20), WithLinear: trial%2 == 0}
		p, golden := testgen.Random(rng, cfg)
		tb := newTable(t, p, golden)
		check := func(step int) {
			a := tb.Assignment()
			counts := make([]int, p.M())
			for _, i := range a {
				counts[i]++
			}
			for i := 0; i < p.M(); i++ {
				if got := tb.Size(i); got != counts[i] {
					t.Fatalf("trial %d step %d: Size(%d) = %d, recount %d", trial, step, i, got, counts[i])
				}
				mem := tb.Members(i)
				for j := 0; j < p.N(); j++ {
					if mem.Test(j) != (a[j] == i) {
						t.Fatalf("trial %d step %d: Members(%d).Test(%d) = %v, assignment says %v",
							trial, step, i, j, mem.Test(j), a[j] == i)
					}
				}
			}
		}
		check(-1)
		for step := 0; step < 40; step++ {
			if rng.Intn(2) == 0 {
				tb.Apply(rng.Intn(p.N()), rng.Intn(p.M()))
			} else {
				j1, j2 := rng.Intn(p.N()), rng.Intn(p.N())
				if j1 != j2 {
					tb.ApplySwap(j1, j2)
				}
			}
			check(step)
		}
	}
}
