// Package kl implements GKL, the second comparison baseline of the paper's
// §5: a generalization of the Kernighan–Lin heuristic that exchanges a pair
// of components at a time, generalized to M-way partitioning, arbitrary
// interconnection costs, variable component sizes and timing constraints.
// Each inner pass performs a sequence of locked swaps (downhill swaps
// allowed) and rolls back to the best prefix; a swap is admissible only if
// it keeps capacity and timing feasibility. Following the paper, the outer
// loop is cut off after a fixed number of passes (6) "due to excessive CPU
// runtime … any gain obtained beyond the first 6 outer loops is
// insignificant".
package kl

import (
	"context"
	"errors"
	"math"
	"math/bits"

	"repro/internal/adjacency"
	"repro/internal/bitset"
	"repro/internal/gains"
	"repro/internal/interrupt"
	"repro/internal/model"
)

// DefaultMaxPasses is the paper's outer-loop cutoff.
const DefaultMaxPasses = 6

// Options tunes Solve.
type Options struct {
	// MaxPasses bounds the outer loops; ≤ 0 means DefaultMaxPasses.
	MaxPasses int
	// RelaxTiming ignores the timing constraints (Table II mode).
	RelaxTiming bool
	// MaxSwapsPerPass bounds the inner swap sequence; ≤ 0 means up to
	// N/2 (every component swapped at most once per pass).
	MaxSwapsPerPass int
	// BoundaryOnly restricts swap selection to pairs with at least one
	// boundary member — a component with a wire crossing partitions —
	// refreshed at every pass start and grown with the wire neighborhood
	// of each applied swap. A search-space heuristic for the multi-level
	// uncoarsening pass; off by default (the paper's GKL scans every
	// pair).
	BoundaryOnly bool
	// OnPass, when set, observes the objective after every pass.
	OnPass func(pass int, objective int64)
}

// Result is the outcome of a solve.
type Result struct {
	Assignment model.Assignment
	Objective  int64
	WireLength int64
	Passes     int
	Swaps      int // accepted (kept) swaps across all passes
	// Stopped reports the passes were cut short by ctx cancellation; the
	// interrupted pass was first rolled back to its best prefix, so the
	// returned assignment stays feasible and no worse than the pass start.
	Stopped bool
}

type swap struct{ j1, j2 int }

// Solve improves a feasible initial assignment by KL-style swap passes.
// The initial assignment must satisfy C1 and (unless relaxed) C2; the
// result is guaranteed to satisfy them too. Note that pure swaps preserve
// the multiset of partition populations only when sizes are equal; with
// variable sizes admissibility is checked against the actual loads.
// A ctx already cancelled at entry returns ctx.Err(); cancellation mid-pass
// stops the swap selection, rolls the pass back to its best prefix, and
// returns with Result.Stopped set.
func Solve(ctx context.Context, p *model.Problem, initial model.Assignment, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	norm := p.Normalized()
	if !norm.CapacityFeasible(initial) || len(initial) != norm.N() || !initial.Valid(norm.M()) {
		return nil, errors.New("kl: initial assignment must be complete and capacity-feasible")
	}
	if !opts.RelaxTiming && !norm.TimingFeasible(initial) {
		return nil, errors.New("kl: initial assignment must be timing-feasible")
	}
	adj := adjacency.Build(norm.Circuit)
	t, err := gains.New(norm, adj, initial)
	if err != nil {
		return nil, err
	}
	n := norm.N()
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = DefaultMaxPasses
	}
	maxSwaps := opts.MaxSwapsPerPass
	if maxSwaps <= 0 {
		maxSwaps = n / 2
	}

	admissible := func(j1, j2 int) bool {
		if !t.SwapCapacityOK(j1, j2) {
			return false
		}
		return opts.RelaxTiming || t.SwapTimingOK(j1, j2)
	}

	ck := interrupt.New(ctx, 0)
	locked := bitset.New(n)
	lw := locked.Words()
	var cand *bitset.Set
	var cw []uint64
	if opts.BoundaryOnly {
		cand = bitset.New(n)
		cw = cand.Words()
	}
	trail := make([]swap, 0, n/2)
	passes, kept := 0, 0
	for {
		passes++
		locked.Reset()
		if cand != nil {
			t.Boundary(cand)
		}
		trail = trail[:0]
		startObj := t.Objective()
		bestObj := startObj
		bestPrefix := 0

		for len(trail) < maxSwaps {
			// One poll per selection (each costs an O(N²) pair scan); on
			// cancellation the roll-back below still runs, so the pass
			// never leaves a worse-than-prefix state behind.
			if ck.Now() {
				break
			}
			// Select the best admissible swap over all unlocked pairs.
			// Each component carries N−1 implicit gain entries; the scan
			// derives them in O(1) from the move-delta table plus the
			// direct-coupling correction. An eligible partner j2 is
			// unlocked and in a different partition than j1, so the inner
			// scan jumps over ineligible stretches one
			// ^(locked|members(s1)) word at a time — the visit order stays
			// ascending, identical to the plain nested loop.
			bestDelta := int64(math.MaxInt64)
			bestJ1, bestJ2 := -1, -1
			for w1, lv := range lw {
				for rem1 := ^lv; rem1 != 0; rem1 &= rem1 - 1 {
					j1 := w1<<6 + bits.TrailingZeros64(rem1)
					if j1 >= n {
						break
					}
					// Boundary restriction: a pair is eligible when at
					// least one member is a candidate — j1 itself, or else
					// the j2 scan is masked down to candidates.
					j1Cand := cw == nil || cand.Test(j1)
					pw := t.Members(t.Partition(j1)).Words()
					for j2 := j1 + 1; j2 < n; {
						w := j2 >> 6
						elig := ^(lw[w] | pw[w])
						if !j1Cand {
							elig &= cw[w]
						}
						rem := elig >> uint(j2&63)
						if rem == 0 {
							j2 = (w + 1) << 6
							continue
						}
						j2 += bits.TrailingZeros64(rem)
						if j2 >= n {
							break
						}
						d := t.SwapDelta(j1, j2)
						if d < bestDelta && admissible(j1, j2) {
							bestDelta, bestJ1, bestJ2 = d, j1, j2
						}
						j2++
					}
				}
			}
			if bestJ1 < 0 {
				break
			}
			t.ApplySwap(bestJ1, bestJ2)
			locked.Set(bestJ1)
			locked.Set(bestJ2)
			if cand != nil {
				// The swap can expose interior wire neighbors; keep them
				// visible for the rest of the pass.
				for _, j := range [2]int{bestJ1, bestJ2} {
					for _, arc := range adj.Arcs[j] {
						if arc.Weight != 0 {
							cand.Set(arc.Other)
						}
					}
				}
			}
			trail = append(trail, swap{bestJ1, bestJ2})
			if obj := t.Objective(); obj < bestObj {
				bestObj = obj
				bestPrefix = len(trail)
			}
		}

		// Roll back to the best prefix (swaps are self-inverse).
		for k := len(trail) - 1; k >= bestPrefix; k-- {
			t.ApplySwap(trail[k].j1, trail[k].j2)
		}
		kept += bestPrefix
		if opts.OnPass != nil {
			opts.OnPass(passes, t.Objective())
		}
		improved := bestObj < startObj
		if !improved || ck.Stopped() || passes >= maxPasses {
			break
		}
	}

	a := t.Assignment()
	return &Result{
		Assignment: a,
		Objective:  norm.Objective(a),
		WireLength: norm.WireLength(a),
		Passes:     passes,
		Swaps:      kept,
		Stopped:    ck.Stopped(),
	}, nil
}
