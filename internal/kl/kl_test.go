package kl

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func TestRejectsInfeasibleInitial(t *testing.T) {
	p := paperex.MustNew()
	if _, err := Solve(context.Background(), p, model.Assignment{0, 0, 1}, Options{}); err == nil {
		t.Fatal("capacity-violating initial accepted")
	}
	if _, err := Solve(context.Background(), p, model.Assignment{0, 3, 1}, Options{}); err == nil {
		t.Fatal("timing-violating initial accepted")
	}
	if _, err := Solve(context.Background(), p, model.Assignment{0, 1}, Options{}); err == nil {
		t.Fatal("short initial accepted")
	}
}

func TestNeverWorsensAndStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		p, golden := testgen.Random(rng, testgen.Config{
			N: 18, GridRows: 2, GridCols: 3, TimingProb: 0.3, WithLinear: trial%2 == 0,
		})
		norm := p.Normalized()
		res, err := Solve(context.Background(), p, golden, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Objective > norm.Objective(golden) {
			t.Fatalf("trial %d: objective worsened %d → %d", trial, norm.Objective(golden), res.Objective)
		}
		if err := norm.CheckFeasible(res.Assignment); err != nil {
			t.Fatalf("trial %d: result infeasible: %v", trial, err)
		}
		if got := norm.Objective(res.Assignment); got != res.Objective {
			t.Fatalf("trial %d: reported objective %d != recomputed %d", trial, res.Objective, got)
		}
	}
}

func TestOuterLoopCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, golden := testgen.Random(rng, testgen.Config{N: 30, GridRows: 2, GridCols: 3, WireProb: 0.4})
	count := 0
	res, err := Solve(context.Background(), p, golden, Options{OnPass: func(pass int, obj int64) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes > DefaultMaxPasses || count != res.Passes {
		t.Fatalf("passes = %d (callbacks %d), want ≤ %d", res.Passes, count, DefaultMaxPasses)
	}
}

func TestSwapsPreserveLoadsWithEqualSizes(t *testing.T) {
	// With all sizes equal, swaps keep every partition load invariant.
	rng := rand.New(rand.NewSource(8))
	p, golden := testgen.Random(rng, testgen.Config{N: 16, MaxSize: 1})
	norm := p.Normalized()
	before := norm.Loads(golden)
	res, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := norm.Loads(res.Assignment)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("load of partition %d changed %d → %d under pure swaps", i, before[i], after[i])
		}
	}
}

func TestRelaxTiming(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, golden := testgen.Random(rng, testgen.Config{N: 14, TimingProb: 0.6, TimingSlack: 0})
	relaxed, err := Solve(context.Background(), p, golden, Options{RelaxTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Normalized().CapacityFeasible(relaxed.Assignment) {
		t.Fatal("relaxed result violates capacity")
	}
}

func TestMaxSwapsPerPass(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p, golden := testgen.Random(rng, testgen.Config{N: 20})
	res, err := Solve(context.Background(), p, golden, Options{MaxSwapsPerPass: 1, MaxPasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps > 3 {
		t.Fatalf("kept swaps = %d, want ≤ passes × 1 = 3", res.Swaps)
	}
}
