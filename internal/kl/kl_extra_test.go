package kl

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/testgen"
)

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p, golden := testgen.Random(rng, testgen.Config{N: 20, TimingProb: 0.3})
	a, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Passes != b.Passes || a.Swaps != b.Swaps {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for j := range a.Assignment {
		if a.Assignment[j] != b.Assignment[j] {
			t.Fatalf("assignments differ at %d", j)
		}
	}
}

// Pass objective trace must be non-increasing (best-prefix rollback).
func TestPassObjectiveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	p, golden := testgen.Random(rng, testgen.Config{N: 26, GridRows: 2, GridCols: 3, WireProb: 0.4})
	var trace []int64
	_, err := Solve(context.Background(), p, golden, Options{OnPass: func(pass int, obj int64) {
		trace = append(trace, obj)
	}})
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Normalized().Objective(golden)
	for k, obj := range trace {
		if obj > prev {
			t.Fatalf("pass %d worsened the objective: %d → %d", k+1, prev, obj)
		}
		prev = obj
	}
}

// Swaps of identical-size components never change loads, so any capacity
// state remains exactly as the initial one even at full tightness.
func TestExactCapacityPreservedUnderUnitSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	p, golden := testgen.Random(rng, testgen.Config{N: 24, MaxSize: 1, CapSlack: 1.0})
	norm := p.Normalized()
	before := norm.Loads(golden)
	res, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := norm.Loads(res.Assignment)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("load %d changed %d → %d", i, before[i], after[i])
		}
	}
}

// A circuit with no wires has a constant objective: GKL must converge in
// one pass with zero kept swaps.
func TestNoWiresConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p, golden := testgen.Random(rng, testgen.Config{N: 10, WireProb: 0.0001, TimingProb: 0.0001})
	p.Circuit.Wires = nil
	p.Circuit.Timing = nil
	res, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 0 || res.Passes != 1 {
		t.Fatalf("constant objective: swaps=%d passes=%d", res.Swaps, res.Passes)
	}
}
