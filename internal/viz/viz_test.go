package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/model"
	"repro/internal/paperex"
)

func TestGridRendering(t *testing.T) {
	p := paperex.MustNew()
	grid := geometry.Grid{Rows: 2, Cols: 2}
	var buf bytes.Buffer
	if err := Grid(&buf, p, grid, model.Assignment{0, 1, 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p1", "p2", "p3", "p4", "100%", "0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("grid rendering missing %q:\n%s", want, out)
		}
	}
	// 2 rows × 2 content lines + 3 horizontal rules.
	if got := strings.Count(out, "\n"); got != 7 {
		t.Fatalf("%d lines, want 7:\n%s", got, out)
	}
}

func TestGridErrors(t *testing.T) {
	p := paperex.MustNew()
	var buf bytes.Buffer
	if err := Grid(&buf, p, geometry.Grid{Rows: 3, Cols: 3}, model.Assignment{0, 1, 3}); err == nil {
		t.Fatal("mismatched grid accepted")
	}
	if err := Grid(&buf, p, geometry.Grid{Rows: 2, Cols: 2}, model.Assignment{0, 1}); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := paperex.MustNew()
	bad.Circuit.Sizes[0] = -1
	if err := Grid(&buf, bad, geometry.Grid{Rows: 2, Cols: 2}, model.Assignment{0, 1, 3}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestWireHistogram(t *testing.T) {
	p := paperex.MustNew()
	var buf bytes.Buffer
	// a adjacent to b, b adjacent to c: all weight at distance 1.
	if err := WireHistogram(&buf, p, model.Assignment{0, 1, 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1:      7") {
		t.Fatalf("expected all 7 wire units at distance 1:\n%s", out)
	}
	// No wires at the diameter.
	if !strings.Contains(out, "2:      0") {
		t.Fatalf("missing zero bucket:\n%s", out)
	}
	// Degenerate: no wires at all.
	empty := paperex.MustNew()
	empty.Circuit.Wires = nil
	buf.Reset()
	if err := WireHistogram(&buf, empty, model.Assignment{0, 1, 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no wires") {
		t.Fatal("empty-circuit message missing")
	}
	if err := WireHistogram(&buf, p, model.Assignment{9, 1, 3}); err == nil {
		t.Fatal("invalid assignment accepted")
	}
}
