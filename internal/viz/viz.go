// Package viz renders placements as plain-text diagrams: the partition
// grid with per-slot utilization and component counts, plus a wire-length
// histogram. Meant for CLI output and debugging, not precision graphics.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/geometry"
	"repro/internal/model"
)

// Grid renders the partition array of p under assignment a: one cell per
// slot showing the component count and the capacity utilization.
func Grid(w io.Writer, p *model.Problem, grid geometry.Grid, a model.Assignment) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if grid.M() != p.M() {
		return fmt.Errorf("viz: grid has %d slots but the problem has %d partitions", grid.M(), p.M())
	}
	if len(a) != p.N() || !a.Valid(p.M()) {
		return fmt.Errorf("viz: assignment is not complete and in range")
	}
	loads := p.Loads(a)
	counts := make([]int, p.M())
	for _, i := range a {
		counts[i]++
	}
	const cellW = 14
	hline := "+" + strings.Repeat(strings.Repeat("-", cellW)+"+", grid.Cols)
	for r := 0; r < grid.Rows; r++ {
		fmt.Fprintln(w, hline)
		// Row 1: slot number and component count.
		for c := 0; c < grid.Cols; c++ {
			i := grid.Slot(r, c)
			fmt.Fprintf(w, "|%*s", cellW, fmt.Sprintf("p%-2d %4d cmp ", i+1, counts[i]))
		}
		fmt.Fprintln(w, "|")
		// Row 2: utilization bar.
		for c := 0; c < grid.Cols; c++ {
			i := grid.Slot(r, c)
			cap := p.Topology.Capacities[i]
			util := 0.0
			if cap > 0 {
				util = float64(loads[i]) / float64(cap)
			}
			bars := int(util*8 + 0.5)
			if bars > 8 {
				bars = 8
			}
			bar := strings.Repeat("#", bars) + strings.Repeat(".", 8-bars)
			fmt.Fprintf(w, "|%*s", cellW, fmt.Sprintf("%s %3.0f%% ", bar, util*100))
		}
		fmt.Fprintln(w, "|")
	}
	fmt.Fprintln(w, hline)
	return nil
}

// WireHistogram renders the distribution of wire lengths (cost-matrix
// distance per wire, weighted) under a.
func WireHistogram(w io.Writer, p *model.Problem, a model.Assignment) error {
	if len(a) != p.N() || !a.Valid(p.M()) {
		return fmt.Errorf("viz: assignment is not complete and in range")
	}
	b := p.Topology.Cost
	var maxD int64
	for _, row := range b {
		for _, v := range row {
			if v > maxD {
				maxD = v
			}
		}
	}
	weightAt := make([]int64, maxD+1)
	var total int64
	for _, wire := range p.Circuit.Wires {
		d := b[a[wire.From]][a[wire.To]]
		weightAt[d] += wire.Weight
		total += wire.Weight
	}
	if total == 0 {
		fmt.Fprintln(w, "no wires")
		return nil
	}
	fmt.Fprintln(w, "wire length distribution (distance: weight):")
	for d, wt := range weightAt {
		bars := int(float64(wt) / float64(total) * 40)
		fmt.Fprintf(w, "%3d: %6d %s\n", d, wt, strings.Repeat("#", bars))
	}
	return nil
}
