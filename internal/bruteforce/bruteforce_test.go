package bruteforce

import (
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
)

func TestPaperExampleOptimum(t *testing.T) {
	p := paperex.MustNew()
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("paper example reported infeasible")
	}
	// Best: a and b adjacent (5 wires × dist 1), b and c adjacent
	// (2 wires × dist 1); quadratic term counts both directions.
	if res.Value != 2*(5+2) {
		t.Fatalf("optimum = %d, want 14", res.Value)
	}
	if err := p.CheckFeasible(res.Assignment); err != nil {
		t.Fatalf("optimal assignment infeasible: %v", err)
	}
}

func TestInfeasibleInstance(t *testing.T) {
	p := paperex.MustNew()
	// Shrink one capacity so only 2 slots remain for 3 unit components... the
	// other three partitions still fit them; instead make every capacity 0.
	for i := range p.Topology.Capacities {
		p.Topology.Capacities[i] = 0
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("infeasible instance reported solvable")
	}
}

func TestTimingMakesInfeasible(t *testing.T) {
	p := paperex.MustNew()
	// Demand zero delay between a and b while capacities forbid sharing a
	// partition: no assignment can satisfy both.
	p.Circuit.Timing[0].MaxDelay = 0
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("contradictory constraints reported solvable")
	}
}

func TestTooLargeRejected(t *testing.T) {
	c := &model.Circuit{Sizes: make([]int64, 30)}
	for j := range c.Sizes {
		c.Sizes[j] = 1
	}
	topo := &model.Topology{
		Capacities: make([]int64, 16),
		Cost:       make([][]int64, 16),
		Delay:      make([][]int64, 16),
	}
	for i := range topo.Capacities {
		topo.Capacities[i] = 100
		topo.Cost[i] = make([]int64, 16)
		topo.Delay[i] = make([]int64, 16)
	}
	p, err := model.NewProblem(c, topo, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("oversized instance accepted")
	}
	if _, err := SolveQBP(p, nil); err == nil {
		t.Fatal("oversized QBP instance accepted")
	}
}

func TestSolveQBPIgnoresTiming(t *testing.T) {
	p := paperex.MustNew()
	// On the raw (un-embedded) matrix the QBP search may place a and b two
	// apart if that were cheaper; with these weights the minimum is still the
	// timing-feasible one, so instead verify it explores capacity-only space:
	// the base optimum must be ≤ the constrained optimum.
	base, err := SolveQBP(p, baseMatrix(p))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Found || !cons.Found {
		t.Fatal("expected both searches to find solutions")
	}
	if base.Value > cons.Value {
		t.Fatalf("unconstrained optimum %d exceeds constrained optimum %d", base.Value, cons.Value)
	}
}

// baseMatrix builds the un-embedded dense Q locally to avoid an import cycle
// with qmatrix (which uses this package in its tests).
func baseMatrix(p *model.Problem) [][]int64 {
	m, n := p.M(), p.N()
	q := make([][]int64, m*n)
	for r := range q {
		q[r] = make([]int64, m*n)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			q[i+j*m][i+j*m] = p.Alpha * p.LinearAt(i, j)
		}
	}
	b := p.Topology.Cost
	for _, w := range p.Circuit.Wires {
		for i1 := 0; i1 < m; i1++ {
			for i2 := 0; i2 < m; i2++ {
				q[i1+w.From*m][i2+w.To*m] += p.Beta * w.Weight * b[i1][i2]
				q[i1+w.To*m][i2+w.From*m] += p.Beta * w.Weight * b[i1][i2]
			}
		}
	}
	return q
}
