// Package bruteforce provides exact reference solvers by exhaustive
// enumeration (Mᴺ assignments). They exist to validate the QBP embedding
// theorems and the heuristics on small instances; they are deliberately
// simple and obviously correct rather than fast.
package bruteforce

import (
	"errors"

	"repro/internal/model"
	"repro/internal/qmatrix"
)

// MaxStates caps the number of assignments a call may enumerate, guarding
// against accidental use on real instances.
const MaxStates = 20_000_000

// Result is the outcome of an exact search.
type Result struct {
	Assignment model.Assignment
	Value      int64
	Found      bool // false when no assignment satisfies the constraints
}

// states returns M^N, or an error if it exceeds MaxStates.
func states(m, n int) (int64, error) {
	total := int64(1)
	for k := 0; k < n; k++ {
		total *= int64(m)
		if total > MaxStates {
			return 0, errors.New("bruteforce: instance too large for exhaustive enumeration")
		}
	}
	return total, nil
}

// enumerate calls visit with every complete assignment of n components to m
// partitions, reusing a single scratch slice.
func enumerate(m, n int, visit func(model.Assignment)) error {
	if _, err := states(m, n); err != nil {
		return err
	}
	a := make(model.Assignment, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			visit(a)
			return
		}
		for i := 0; i < m; i++ {
			a[j] = i
			rec(j + 1)
		}
	}
	rec(0)
	return nil
}

// Solve finds the exact minimum of the PP(α,β) objective over all
// assignments satisfying C1 (capacity), C2 (timing) and C3.
func Solve(p *model.Problem) (Result, error) {
	var res Result
	err := enumerate(p.M(), p.N(), func(a model.Assignment) {
		if !p.CapacityFeasible(a) || !p.TimingFeasible(a) {
			return
		}
		v := p.Objective(a)
		if !res.Found || v < res.Value {
			res = Result{Assignment: a.Clone(), Value: v, Found: true}
		}
	})
	return res, err
}

// SolveQBP finds the exact minimum of yᵀQy over the solution space
// S = {y satisfying C1 and C3} for a dense cost matrix q (timing constraints
// are *not* enforced — they are expected to be embedded in q). This is the
// reference for the embedding theorems: QBP(Q') of Theorem 1 and QBP(Q̂) of
// Theorem 2.
func SolveQBP(p *model.Problem, q [][]int64) (Result, error) {
	m := p.M()
	var res Result
	err := enumerate(m, p.N(), func(a model.Assignment) {
		if !p.CapacityFeasible(a) {
			return
		}
		v := quadValue(q, a, m)
		if !res.Found || v < res.Value {
			res = Result{Assignment: a.Clone(), Value: v, Found: true}
		}
	})
	return res, err
}

func quadValue(q [][]int64, a model.Assignment, m int) int64 {
	var v int64
	for j1, i1 := range a {
		row := q[qmatrix.Pack(i1, j1, m)]
		for j2, i2 := range a {
			v += row[qmatrix.Pack(i2, j2, m)]
		}
	}
	return v
}
