package adjacency

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func circuit() *model.Circuit {
	return &model.Circuit{
		Sizes: []int64{1, 1, 1, 1},
		Wires: []model.Wire{
			{From: 0, To: 1, Weight: 5},
			{From: 1, To: 0, Weight: 3}, // duplicate pair, reversed: weights accumulate
			{From: 1, To: 2, Weight: 2},
		},
		Timing: []model.TimingConstraint{
			{From: 0, To: 1, MaxDelay: 4},
			{From: 1, To: 0, MaxDelay: 2}, // duplicate: tightest bound kept
			{From: 2, To: 3, MaxDelay: 7}, // timing-only pair
		},
	}
}

func TestBuildMergesPairs(t *testing.T) {
	l := Build(circuit())
	if l.N != 4 {
		t.Fatalf("N = %d, want 4", l.N)
	}
	if got := l.WireWeight(0, 1); got != 8 {
		t.Fatalf("WireWeight(0,1) = %d, want 8", got)
	}
	if got := l.WireWeight(1, 0); got != 8 {
		t.Fatalf("WireWeight(1,0) = %d, want 8 (symmetric)", got)
	}
	if got := l.MaxDelay(0, 1); got != 2 {
		t.Fatalf("MaxDelay(0,1) = %d, want tightest 2", got)
	}
	if got := l.MaxDelay(2, 3); got != 7 {
		t.Fatalf("MaxDelay(2,3) = %d, want 7", got)
	}
	if got := l.WireWeight(2, 3); got != 0 {
		t.Fatalf("WireWeight(2,3) = %d, want 0 (timing-only arc)", got)
	}
	if got := l.MaxDelay(1, 2); got != model.Unconstrained {
		t.Fatalf("MaxDelay(1,2) = %d, want Unconstrained (wire-only arc)", got)
	}
	if got := l.MaxDelay(0, 3); got != model.Unconstrained {
		t.Fatalf("MaxDelay(0,3) = %d, want Unconstrained (no arc)", got)
	}
	if got := l.WireWeight(0, 3); got != 0 {
		t.Fatalf("WireWeight(0,3) = %d, want 0 (no arc)", got)
	}
}

func TestDegreesAndNNZ(t *testing.T) {
	l := Build(circuit())
	wantDeg := []int{1, 2, 2, 1} // pairs: (0,1), (1,2), (2,3)
	for j, want := range wantDeg {
		if got := l.Degree(j); got != want {
			t.Fatalf("Degree(%d) = %d, want %d", j, got, want)
		}
	}
	if got := l.NNZ(); got != 6 {
		t.Fatalf("NNZ = %d, want 6", got)
	}
}

func TestArcsSorted(t *testing.T) {
	l := Build(circuit())
	for j, arcs := range l.Arcs {
		for k := 1; k < len(arcs); k++ {
			if arcs[k-1].Other >= arcs[k].Other {
				t.Fatalf("Arcs[%d] not strictly sorted: %v", j, arcs)
			}
		}
	}
}

// Property: for random circuits, the lists agree with a dense reference
// built directly from the wire and timing sets.
func TestBuildAgainstDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		c := &model.Circuit{Sizes: make([]int64, n)}
		for j := range c.Sizes {
			c.Sizes[j] = 1
		}
		wantW := make([][]int64, n)
		wantD := make([][]int64, n)
		for j := range wantW {
			wantW[j] = make([]int64, n)
			wantD[j] = make([]int64, n)
			for k := range wantD[j] {
				wantD[j][k] = model.Unconstrained
			}
		}
		for e := rng.Intn(3 * n); e > 0; e-- {
			j1, j2 := rng.Intn(n), rng.Intn(n)
			if j1 == j2 {
				continue
			}
			w := int64(1 + rng.Intn(5))
			c.Wires = append(c.Wires, model.Wire{From: j1, To: j2, Weight: w})
			wantW[j1][j2] += w
			wantW[j2][j1] += w
		}
		for e := rng.Intn(2 * n); e > 0; e-- {
			j1, j2 := rng.Intn(n), rng.Intn(n)
			if j1 == j2 {
				continue
			}
			d := int64(rng.Intn(6))
			c.Timing = append(c.Timing, model.TimingConstraint{From: j1, To: j2, MaxDelay: d})
			if d < wantD[j1][j2] {
				wantD[j1][j2] = d
				wantD[j2][j1] = d
			}
		}
		l := Build(c)
		for j1 := 0; j1 < n; j1++ {
			for j2 := 0; j2 < n; j2++ {
				if j1 == j2 {
					continue
				}
				if got := l.WireWeight(j1, j2); got != wantW[j1][j2] {
					t.Fatalf("trial %d: WireWeight(%d,%d) = %d, want %d", trial, j1, j2, got, wantW[j1][j2])
				}
				if got := l.MaxDelay(j1, j2); got != wantD[j1][j2] {
					t.Fatalf("trial %d: MaxDelay(%d,%d) = %d, want %d", trial, j1, j2, got, wantD[j1][j2])
				}
			}
		}
	}
}
