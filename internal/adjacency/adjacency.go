// Package adjacency builds compressed per-component neighbor lists from a
// circuit's wire and timing-constraint sets. This is the sparse
// representation the paper's §4.3 enhancement relies on: the Q̂ cost matrix
// is never materialized; its nonzero couplings are enumerated on demand from
// these lists, so each heuristic iteration costs O(M·(nnz(A)+nnz(D_C)))
// instead of M²N².
package adjacency

import (
	"sort"

	"repro/internal/model"
)

// Arc is one sparse coupling seen from a component: the wire weight
// a[j][Other] and/or the timing bound D_C[j][Other]. A pair connected by a
// wire and constrained in timing is represented by a single Arc carrying
// both; Weight is 0 for timing-only arcs and MaxDelay is
// model.Unconstrained for wire-only arcs.
type Arc struct {
	Other    int
	Weight   int64
	MaxDelay int64
}

// Lists holds, for every component, its combined wire/timing arcs in both
// directions (the symmetric interpretation of A and D_C).
type Lists struct {
	N    int
	Arcs [][]Arc // Arcs[j], sorted by Other
}

// Build constructs the neighbor lists of a circuit. Duplicate wires between
// the same pair accumulate weight; duplicate timing constraints keep the
// tightest bound.
func Build(c *model.Circuit) *Lists {
	n := c.N()
	type key struct{ a, b int }
	merged := make(map[key]*Arc, len(c.Wires)+len(c.Timing))
	norm := func(x, y int) key {
		if x > y {
			x, y = y, x
		}
		return key{x, y}
	}
	for _, w := range c.Wires {
		k := norm(w.From, w.To)
		a := merged[k]
		if a == nil {
			a = &Arc{MaxDelay: model.Unconstrained}
			merged[k] = a
		}
		a.Weight += w.Weight
	}
	for _, t := range c.Timing {
		k := norm(t.From, t.To)
		a := merged[k]
		if a == nil {
			a = &Arc{MaxDelay: model.Unconstrained}
			merged[k] = a
		}
		if t.MaxDelay < a.MaxDelay {
			a.MaxDelay = t.MaxDelay
		}
	}
	counts := make([]int, n)
	for k := range merged {
		counts[k.a]++
		counts[k.b]++
	}
	l := &Lists{N: n, Arcs: make([][]Arc, n)}
	for j := range l.Arcs {
		l.Arcs[j] = make([]Arc, 0, counts[j])
	}
	for k, a := range merged {
		l.Arcs[k.a] = append(l.Arcs[k.a], Arc{Other: k.b, Weight: a.Weight, MaxDelay: a.MaxDelay})
		l.Arcs[k.b] = append(l.Arcs[k.b], Arc{Other: k.a, Weight: a.Weight, MaxDelay: a.MaxDelay})
	}
	for j := range l.Arcs {
		arcs := l.Arcs[j]
		sort.Slice(arcs, func(x, y int) bool { return arcs[x].Other < arcs[y].Other })
	}
	return l
}

// Degree returns the number of distinct neighbors of component j.
func (l *Lists) Degree(j int) int { return len(l.Arcs[j]) }

// WireWeight returns the aggregated wire weight between j1 and j2
// (0 if they are not connected).
func (l *Lists) WireWeight(j1, j2 int) int64 {
	arcs := l.Arcs[j1]
	lo, hi := 0, len(arcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if arcs[mid].Other < j2 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(arcs) && arcs[lo].Other == j2 {
		return arcs[lo].Weight
	}
	return 0
}

// MaxDelay returns the tightest timing bound between j1 and j2
// (model.Unconstrained if the pair is unconstrained).
func (l *Lists) MaxDelay(j1, j2 int) int64 {
	arcs := l.Arcs[j1]
	for _, a := range arcs {
		if a.Other == j2 {
			return a.MaxDelay
		}
		if a.Other > j2 {
			break
		}
	}
	return model.Unconstrained
}

// DelayClasses returns the sorted distinct finite MaxDelay values over all
// arcs ("delay classes") and, aligned with Arcs, the class index of every
// arc (-1 for arcs without a timing bound). The flat solve kernels
// precompute one effective cost row per (class, partition) pair, which is
// only economical because real circuits carry a handful of distinct bounds.
func (l *Lists) DelayClasses() (bounds []int64, classes [][]int) {
	seen := make(map[int64]int)
	for _, arcs := range l.Arcs {
		for _, a := range arcs {
			if a.MaxDelay != model.Unconstrained {
				seen[a.MaxDelay] = 0
			}
		}
	}
	bounds = make([]int64, 0, len(seen))
	for v := range seen {
		bounds = append(bounds, v)
	}
	sort.Slice(bounds, func(x, y int) bool { return bounds[x] < bounds[y] })
	for c, v := range bounds {
		seen[v] = c
	}
	classes = make([][]int, len(l.Arcs))
	for j, arcs := range l.Arcs {
		if len(arcs) == 0 {
			continue
		}
		classes[j] = make([]int, len(arcs))
		for k, a := range arcs {
			if a.MaxDelay == model.Unconstrained {
				classes[j][k] = -1
			} else {
				classes[j][k] = seen[a.MaxDelay]
			}
		}
	}
	return bounds, classes
}

// NNZ returns the total number of stored arcs (twice the number of distinct
// coupled pairs).
func (l *Lists) NNZ() int {
	t := 0
	for _, a := range l.Arcs {
		t += len(a)
	}
	return t
}
