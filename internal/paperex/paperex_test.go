package paperex

import "testing"

func TestInstanceShape(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || p.M() != 4 {
		t.Fatalf("N=%d M=%d, want 3 components on 4 partitions", p.N(), p.M())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The wires and bounds of §3.3.
	if len(p.Circuit.Wires) != 2 || p.Circuit.Wires[0].Weight != 5 || p.Circuit.Wires[1].Weight != 2 {
		t.Fatalf("wires = %v", p.Circuit.Wires)
	}
	if len(p.Circuit.Timing) != 2 {
		t.Fatalf("timing = %v", p.Circuit.Timing)
	}
	for _, tc := range p.Circuit.Timing {
		if tc.MaxDelay != 1 {
			t.Fatalf("bound %d, want 1", tc.MaxDelay)
		}
	}
}

func TestQhatShape(t *testing.T) {
	q := Qhat()
	if len(q) != 12 {
		t.Fatalf("Q̂ has %d rows, want 12", len(q))
	}
	for r, row := range q {
		if len(row) != 12 {
			t.Fatalf("row %d has %d columns", r, len(row))
		}
		// The §3.3 matrix is symmetric.
		for c := range row {
			if q[r][c] != q[c][r] {
				t.Fatalf("Q̂ not symmetric at (%d,%d)", r, c)
			}
		}
		// Diagonal blocks (same component) are zero off the p entries,
		// which are themselves zero in the printed matrix.
		blockR := r / 4
		for c := blockR * 4; c < blockR*4+4; c++ {
			if q[r][c] != 0 {
				t.Fatalf("same-component entry (%d,%d) = %d, want 0", r, c, q[r][c])
			}
		}
	}
	// Each a–b block row carries exactly one 50 (the violating partner
	// slot) and two 5-couplings plus a zero.
	count50, count5, count2 := 0, 0, 0
	for _, row := range q {
		for _, v := range row {
			switch v {
			case Penalty:
				count50++
			case 5:
				count5++
			case 2:
				count2++
			}
		}
	}
	if count50 != 16 || count5 != 16 || count2 != 16 {
		t.Fatalf("entry histogram 50:%d 5:%d 2:%d, want 16 each", count50, count5, count2)
	}
}
