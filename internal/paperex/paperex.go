// Package paperex constructs the worked example of §3.3 of the paper:
// three components a, b, c assigned to four partitions arranged as a 2×2
// array, five wires between a and b, two wires between b and c, timing
// bounds D_C(a,b) = D_C(b,c) = 1 and D_C(a,c) = ∞, and B = D = the
// Manhattan distance matrix of the array. It is used as a golden instance by
// tests and by the quickstart example.
package paperex

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/model"
)

// Component indices in the example.
const (
	A = 0
	B = 1
	C = 2
)

// Penalty is the raised cost the paper assigns to timing-violating entries
// of Q̂ in this example (and in its experiments).
const Penalty = 50

// New returns the example as a validated PP(1,1) problem. Component sizes
// and partition capacities are all 1, so the capacity constraint forces the
// three components onto three distinct partitions (the paper leaves sizes
// unspecified; unit sizes keep the instance faithful to its figure). The
// linear matrix P is nil (the paper leaves its entries symbolic).
func New() (*model.Problem, error) {
	grid := geometry.Grid{Rows: 2, Cols: 2}
	dist, err := grid.DistanceMatrix(geometry.Manhattan)
	if err != nil {
		return nil, fmt.Errorf("paperex: %w", err)
	}
	circuit := &model.Circuit{
		Name:  "paper-example",
		Sizes: []int64{1, 1, 1},
		Wires: []model.Wire{
			{From: A, To: B, Weight: 5},
			{From: B, To: C, Weight: 2},
		},
		Timing: []model.TimingConstraint{
			{From: A, To: B, MaxDelay: 1},
			{From: B, To: C, MaxDelay: 1},
		},
	}
	topo := &model.Topology{
		Capacities: []int64{1, 1, 1, 1},
		Cost:       dist,
		Delay:      dist,
	}
	p, err := model.NewProblem(circuit, topo, 1, 1, nil)
	if err != nil {
		return nil, fmt.Errorf("paperex: invalid example instance: %w", err)
	}
	return p, nil
}

// MustNew is New for callers that can tolerate a crash on the (statically
// impossible) construction failure — in practice, tests.
func MustNew() *model.Problem {
	p, err := New()
	if err != nil {
		//lint:ignore panic-in-library test convenience wrapper; New covers the error path
		panic(err)
	}
	return p
}

// Qhat returns the 12×12 cost matrix exactly as printed in the paper's
// §3.3 (with the symbolic p entries zero): wire couplings a[j1][j2]·b[i1][i2]
// everywhere, except 50 at every timing-violating slot.
func Qhat() [][]int64 {
	const x = Penalty
	return [][]int64{
		//  a1 a2 a3 a4  b1 b2 b3 b4  c1 c2 c3 c4
		{0, 0, 0, 0 /**/, 0, 5, 5, x /**/, 0, 0, 0, 0}, // a,1
		{0, 0, 0, 0 /**/, 5, 0, x, 5 /**/, 0, 0, 0, 0}, // a,2
		{0, 0, 0, 0 /**/, 5, x, 0, 5 /**/, 0, 0, 0, 0}, // a,3
		{0, 0, 0, 0 /**/, x, 5, 5, 0 /**/, 0, 0, 0, 0}, // a,4
		{0, 5, 5, x /**/, 0, 0, 0, 0 /**/, 0, 2, 2, x}, // b,1
		{5, 0, x, 5 /**/, 0, 0, 0, 0 /**/, 2, 0, x, 2}, // b,2
		{5, x, 0, 5 /**/, 0, 0, 0, 0 /**/, 2, x, 0, 2}, // b,3
		{x, 5, 5, 0 /**/, 0, 0, 0, 0 /**/, x, 2, 2, 0}, // b,4
		{0, 0, 0, 0 /**/, 0, 2, 2, x /**/, 0, 0, 0, 0}, // c,1
		{0, 0, 0, 0 /**/, 2, 0, x, 2 /**/, 0, 0, 0, 0}, // c,2
		{0, 0, 0, 0 /**/, 2, x, 0, 2 /**/, 0, 0, 0, 0}, // c,3
		{0, 0, 0, 0 /**/, x, 2, 2, 0 /**/, 0, 0, 0, 0}, // c,4
	}
}
