// Package flatmat provides the flat performance kernels under the QBP
// solve path: row-major flat []int64 mirrors of the topology cost/delay
// matrices, and a precomputed per-delay-class "effective row" cache that
// turns the Q̂ entry of one arc into a branch-free multiply-add.
//
// The paper's §4.3 enhancement enumerates Q̂'s nonzeros from sparse arc
// lists; the inner accumulation for one arc seen from component j2 with its
// partner on partition i1 is, over target partitions i2,
//
//	q̂(i1,i2) = penalty            if d[i1][i2] > D_C(arc)
//	         = weight · b[i1][i2] otherwise.
//
// The branch depends only on (D_C bound, i1, i2) — not on the arc's weight —
// and real circuits carry a handful of distinct finite D_C values ("delay
// classes"). Kernel therefore precomputes, per (class, i1), two length-M
// rows:
//
//	MaskB[i2]  = b[i1][i2] where the pair is feasible, 0 where violating
//	PenAdd[i2] = 0 where feasible, penalty where violating
//
// so the effective row is weight·MaskB + PenAdd: a bound-check-free fused
// loop over contiguous memory, the shape both the η accumulation (STEP 3)
// and the exact move evaluators (polish) reduce to.
package flatmat

// Matrix is a row-major flat int64 matrix. Rows are contiguous length-Stride
// slices; use Row to address them without ad-hoc index arithmetic.
type Matrix struct {
	Stride int
	V      []int64
}

// FromRows flattens a rectangular row-of-pointers matrix. An empty input
// yields a zero Matrix.
func FromRows(rows [][]int64) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	stride := len(rows[0])
	m := Matrix{Stride: stride, V: make([]int64, len(rows)*stride)}
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return m
}

// Rows returns the number of rows.
func (m Matrix) Rows() int {
	if m.Stride == 0 {
		return 0
	}
	return len(m.V) / m.Stride
}

// Row returns row i as a contiguous subslice. Callers guarantee
// 0 <= i < Rows(); the runtime slice check backs that contract.
func (m Matrix) Row(i int) []int64 {
	//lint:ignore flat-bounds caller contract 0 <= i < Rows() is not visible locally
	return m.V[i*m.Stride : (i+1)*m.Stride]
}

// At returns entry (i, j).
func (m Matrix) At(i, j int) int64 { return m.Row(i)[j] }

// UnconstrainedClass is the Kernel class of arcs without a (finite) timing
// bound: their effective row is weight·b[i1] with no penalty additions.
const UnconstrainedClass = -1

// Kernel is the per-(delay-class, partner-partition) effective-row cache.
// Build one per (topology, penalty) pair; it is immutable afterwards and
// safe for concurrent use.
type Kernel struct {
	m       int
	penalty int64
	b       Matrix
	// maskB and penAdd hold classes×M rows of length M each; the row for
	// (class c, partition i1) starts at rowStart(c, i1).
	maskB  Matrix
	penAdd Matrix
}

// NewKernel precomputes the effective rows for every delay class in
// delayBounds (the sorted distinct finite D_C values, as produced by
// adjacency.Lists.DelayClasses) against the M×M cost matrix b and delay
// matrix d. A zero penalty (the relaxed/Table II configuration) still
// zeroes MaskB outside the feasible region, matching the embedded Q̂ whose
// violating entries are *set* to the penalty rather than added to.
func NewKernel(b, d Matrix, delayBounds []int64, penalty int64) *Kernel {
	m := b.Rows()
	k := &Kernel{m: m, penalty: penalty, b: b}
	rows := len(delayBounds) * m
	k.maskB = Matrix{Stride: m, V: make([]int64, rows*m)}
	k.penAdd = Matrix{Stride: m, V: make([]int64, rows*m)}
	for c, bound := range delayBounds {
		for i1 := 0; i1 < m; i1++ {
			mask := k.maskB.Row(c*m + i1)
			pen := k.penAdd.Row(c*m + i1)
			brow := b.Row(i1)
			drow := d.Row(i1)
			for i2 := 0; i2 < m; i2++ {
				if drow[i2] > bound {
					pen[i2] = penalty
				} else {
					mask[i2] = brow[i2]
				}
			}
		}
	}
	return k
}

// M returns the partition count the kernel was built for.
func (k *Kernel) M() int { return k.m }

// Rows returns the effective-row pair of (class, i1): mask is b's row i1
// restricted to timing-feasible targets, pen the penalty additions. For
// UnconstrainedClass pen is nil and mask is the plain b row.
func (k *Kernel) Rows(class, i1 int) (mask, pen []int64) {
	if class == UnconstrainedClass {
		return k.b.Row(i1), nil
	}
	return k.ClassRows(class, i1)
}

// BRow returns the plain cost row of partition i1 (the effective row of
// unconstrained arcs). Small enough to inline into per-arc loops.
func (k *Kernel) BRow(i1 int) []int64 { return k.b.Row(i1) }

// ClassRows returns the (mask, pen) pair of a finite delay class without
// the unconstrained-class branch of Rows. Small enough to inline.
func (k *Kernel) ClassRows(class, i1 int) (mask, pen []int64) {
	return k.maskB.Row(class*k.m + i1), k.penAdd.Row(class*k.m + i1)
}

// Entry returns the single Q̂ entry of an arc with weight w in delay class
// class for the ordered partition pair (i1, i2). Direct flat indexing so
// the call inlines into per-arc evaluation loops.
func (k *Kernel) Entry(class, i1, i2 int, w int64) int64 {
	if class == UnconstrainedClass {
		//lint:ignore flat-bounds caller contract 0 <= i1,i2 < M is not visible locally
		return w * k.b.V[i1*k.b.Stride+i2]
	}
	r := (class*k.m + i1) * k.m
	//lint:ignore flat-bounds caller contract 0 <= class < classes, 0 <= i1,i2 < M is not visible locally
	return w*k.maskB.V[r+i2] + k.penAdd.V[r+i2]
}

// AddInto accumulates the effective row of (class, i1) scaled by w into dst:
// dst[i2] += w·MaskB[i2] + PenAdd[i2]. len(dst) must be M.
func (k *Kernel) AddInto(dst []int64, w int64, class, i1 int) {
	mask, pen := k.Rows(class, i1)
	dst = dst[:len(mask)]
	if pen == nil {
		for i2 := range dst {
			dst[i2] += w * mask[i2]
		}
		return
	}
	pen = pen[:len(mask)]
	for i2 := range dst {
		dst[i2] += w*mask[i2] + pen[i2]
	}
}

// SubInto removes the effective row of (class, i1) scaled by w from dst,
// exactly inverting AddInto (int64 arithmetic is exact, so an Add/Sub pair
// restores dst bit for bit).
func (k *Kernel) SubInto(dst []int64, w int64, class, i1 int) {
	mask, pen := k.Rows(class, i1)
	dst = dst[:len(mask)]
	if pen == nil {
		for i2 := range dst {
			dst[i2] -= w * mask[i2]
		}
		return
	}
	pen = pen[:len(mask)]
	for i2 := range dst {
		dst[i2] -= w*mask[i2] + pen[i2]
	}
}
