package flatmat

import (
	"math/rand"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/model"
)

func TestFromRowsRoundTrip(t *testing.T) {
	rows := [][]int64{{1, 2, 3}, {4, 5, 6}}
	m := FromRows(rows)
	if m.Rows() != 2 || m.Stride != 3 {
		t.Fatalf("shape = %d×%d, want 2×3", m.Rows(), m.Stride)
	}
	for i := range rows {
		for j := range rows[i] {
			if m.At(i, j) != rows[i][j] {
				t.Fatalf("At(%d,%d) = %d, want %d", i, j, m.At(i, j), rows[i][j])
			}
		}
	}
	// The flat mirror is a copy, not an alias.
	rows[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows aliased the input rows")
	}
	if z := FromRows(nil); z.Rows() != 0 {
		t.Fatalf("empty FromRows has %d rows", z.Rows())
	}
}

// reference is the branchy per-entry evaluation the kernel replaces.
func reference(b, d [][]int64, bound, penalty, w int64, i1, i2 int) int64 {
	if bound != model.Unconstrained && d[i1][i2] > bound {
		return penalty
	}
	return w * b[i1][i2]
}

func TestKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(9)
		b := make([][]int64, m)
		d := make([][]int64, m)
		for i := range b {
			b[i] = make([]int64, m)
			d[i] = make([]int64, m)
			for j := range b[i] {
				b[i][j] = int64(rng.Intn(20))
				d[i][j] = int64(rng.Intn(10))
			}
		}
		bounds := []int64{0, 3, 7}
		penalty := int64(50)
		k := NewKernel(FromRows(b), FromRows(d), bounds, penalty)
		if k.M() != m {
			t.Fatalf("kernel M = %d, want %d", k.M(), m)
		}
		classes := append([]int{UnconstrainedClass}, 0, 1, 2)
		for _, class := range classes {
			bound := model.Unconstrained
			if class >= 0 {
				bound = bounds[class]
			}
			w := int64(rng.Intn(5))
			for i1 := 0; i1 < m; i1++ {
				got := make([]int64, m)
				k.AddInto(got, w, class, i1)
				for i2 := 0; i2 < m; i2++ {
					want := reference(b, d, bound, penalty, w, i1, i2)
					if got[i2] != want {
						t.Fatalf("AddInto class=%d i1=%d i2=%d w=%d: got %d, want %d",
							class, i1, i2, w, got[i2], want)
					}
					if e := k.Entry(class, i1, i2, w); e != want {
						t.Fatalf("Entry class=%d i1=%d i2=%d w=%d: got %d, want %d",
							class, i1, i2, w, e, want)
					}
				}
				// SubInto exactly inverts AddInto.
				k.SubInto(got, w, class, i1)
				for i2 := 0; i2 < m; i2++ {
					if got[i2] != 0 {
						t.Fatalf("SubInto left residue %d at class=%d i1=%d i2=%d", got[i2], class, i1, i2)
					}
				}
			}
		}
	}
}

func TestKernelZeroPenaltyStillMasks(t *testing.T) {
	// The embedded Q̂ *sets* violating entries to the penalty; with penalty 0
	// the wire coupling must still disappear there, not survive.
	b := FromRows([][]int64{{0, 5}, {5, 0}})
	d := FromRows([][]int64{{0, 9}, {9, 0}})
	k := NewKernel(b, d, []int64{3}, 0)
	if got := k.Entry(0, 0, 1, 2); got != 0 {
		t.Fatalf("violating entry with zero penalty = %d, want 0", got)
	}
	if got := k.Entry(0, 0, 0, 2); got != 0 {
		t.Fatalf("feasible diagonal entry = %d, want 0", got)
	}
}

func TestDelayClasses(t *testing.T) {
	c := &model.Circuit{
		Sizes: []int64{1, 1, 1, 1},
		Wires: []model.Wire{{From: 0, To: 1, Weight: 2}, {From: 2, To: 3, Weight: 1}},
		Timing: []model.TimingConstraint{
			{From: 0, To: 1, MaxDelay: 5},
			{From: 1, To: 2, MaxDelay: 2},
			{From: 2, To: 3, MaxDelay: 5},
		},
	}
	l := adjacency.Build(c)
	bounds, classes := l.DelayClasses()
	if len(bounds) != 2 || bounds[0] != 2 || bounds[1] != 5 {
		t.Fatalf("bounds = %v, want [2 5]", bounds)
	}
	for j, arcs := range l.Arcs {
		for k, a := range arcs {
			class := classes[j][k]
			switch {
			case a.MaxDelay == model.Unconstrained && class != -1:
				t.Fatalf("arc %d/%d unconstrained but class %d", j, k, class)
			case a.MaxDelay != model.Unconstrained && bounds[class] != a.MaxDelay:
				t.Fatalf("arc %d/%d bound %d but class %d (bound %d)", j, k, a.MaxDelay, class, bounds[class])
			}
		}
	}
}
