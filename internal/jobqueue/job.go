package jobqueue

import (
	"context"
	"time"

	"repro/internal/model"
	"repro/internal/qbp"
)

// State is a job's position in its lifecycle. Transitions are
// Queued → Running → one of {Done, Failed}, or Queued/Running → Canceled
// (a cancelled *running* solve still lands in Done: the solver's
// cancellation contract returns the best-so-far incumbent with Stopped set,
// which is a result, not an absence of one; Canceled is reserved for jobs
// that never produced anything — cancelled before starting, or preempted so
// early the solver had no incumbent).
type State int

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

// String returns the wire spelling used by the HTTP API and /metrics.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request describes one solve job. The zero value of every knob means "the
// solver's default"; Deadline is clamped to the pool's MaxDeadline and
// defaulted from DefaultDeadline at submission.
type Request struct {
	// Problem is the instance to partition (required, pre-validated at
	// submission).
	Problem *model.Problem
	// Method selects the solver: "qbp" (default), "gfm", "gkl" or "sa".
	Method string
	// Iterations is the QBP iteration budget (qbp only; ≤ 0 = default).
	Iterations int
	// MultiStart runs this many independent seeded QBP starts (qbp only;
	// ≤ 1 = single start).
	MultiStart int
	// Workers shards the solve's inner loops; results are identical for
	// any value (qbp only; ≤ 1 = serial).
	Workers int
	// Seed drives every randomized choice; a fixed seed reproduces the
	// identical assignment regardless of pool size or queue order.
	Seed int64
	// RelaxTiming drops the timing constraints (Table II mode).
	RelaxTiming bool
	// Deadline is the per-job wall-clock budget, measured from solve
	// start (not from submission); at expiry the job completes with its
	// best-so-far incumbent and Stopped set. 0 means the pool default.
	Deadline time.Duration
	// Priority orders the queue: higher runs first, ties in submission
	// order.
	Priority int
}

// Outcome is a finished job's result. For StateDone every solution field
// is populated; for StateFailed and StateCanceled only Err is.
type Outcome struct {
	// Assignment is the solution (component → partition).
	Assignment model.Assignment
	// Objective is α·linear + β·quadratic of Assignment.
	Objective int64
	// WireLength is the single-direction wire cost.
	WireLength int64
	// Feasible reports capacity + timing feasibility.
	Feasible bool
	// TimingViolations counts violated timing constraints.
	TimingViolations int
	// Stopped reports the solve ended at its deadline or on cancellation
	// and Assignment is the best incumbent found before the stop.
	Stopped bool
	// Stats is the QBP solve telemetry (nil for the other methods).
	Stats *qbp.SolveStats
	// Err is the failure description (StateFailed/StateCanceled only).
	Err string
}

// EventType tags a progress-stream event.
type EventType int

// Progress-stream event types.
const (
	// EventState reports a lifecycle transition (Event.State).
	EventState EventType = iota
	// EventProgress reports a solver telemetry snapshot (Event.Progress).
	EventProgress
)

// Event is one entry of a job's progress stream.
type Event struct {
	Type     EventType
	State    State
	Progress qbp.Progress
}

// Job is one submitted solve tracked by a Pool. All methods are safe for
// concurrent use.
type Job struct {
	id       string
	seq      uint64
	priority int
	method   string
	req      Request

	pool *Pool

	// Guarded by pool.mu (the pool's single lock also orders every job
	// state transition, keeping the queue counters and job states in one
	// consistent view; see Pool).
	state     State
	outcome   *Outcome
	cancel    context.CancelFunc // set while running
	submitted time.Time
	started   time.Time
	finished  time.Time
	subs      []chan Event

	// done is closed on the transition to a terminal state.
	done chan struct{}
}

// Status is a point-in-time snapshot of a job.
type Status struct {
	// ID is the pool-assigned job identifier.
	ID string
	// State is the lifecycle state at snapshot time.
	State State
	// Method is the resolved solver name.
	Method string
	// Priority is the queue priority the job was submitted with.
	Priority int
	// Components and Partitions are the instance dimensions.
	Components, Partitions int
	// SubmittedAt, StartedAt and FinishedAt are the lifecycle timestamps
	// (zero until reached).
	SubmittedAt, StartedAt, FinishedAt time.Time
	// Outcome is the result; nil until the job reaches a terminal state.
	Outcome *Outcome
}

// ID returns the pool-assigned identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns a consistent snapshot of the job.
func (j *Job) Status() Status {
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	return Status{
		ID:          j.id,
		State:       j.state,
		Method:      j.method,
		Priority:    j.priority,
		Components:  j.req.Problem.N(),
		Partitions:  j.req.Problem.M(),
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Outcome:     j.outcome,
	}
}

// Subscribe attaches a buffered progress stream to the job. Events are
// delivered best-effort: a subscriber that falls behind loses intermediate
// progress snapshots, never the stream itself — the channel is closed when
// the job reaches a terminal state, and the final Status always carries the
// outcome. The returned stop function detaches the subscriber (the channel
// is then abandoned, not closed). Subscribing to an already-terminal job
// returns an immediately-closed channel.
func (j *Job) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 16
	}
	ch := make(chan Event, buf)
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	stop := func() {
		j.pool.mu.Lock()
		defer j.pool.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
	return ch, stop
}

// publishLocked fans an event out to every subscriber without blocking:
// a full buffer drops the event for that subscriber. Callers hold pool.mu.
func (j *Job) publishLocked(ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finishLocked moves the job to a terminal state, records the outcome,
// notifies and detaches every subscriber, and closes Done. Callers hold
// pool.mu; the transition is a no-op when the job is already terminal.
func (j *Job) finishLocked(state State, out *Outcome, at time.Time) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.outcome = out
	j.finished = at
	j.cancel = nil
	j.publishLocked(Event{Type: EventState, State: state})
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
}
