package jobqueue

// metricsState is the pool's internal counter set, guarded by Pool.mu.
type metricsState struct {
	submitted    uint64
	completed    uint64
	failed       uint64
	canceled     uint64
	stopped      uint64 // completed jobs that hit a deadline/cancellation
	rejectedFull uint64
	rejectedSize uint64

	solveSeconds histogram
	waitSeconds  histogram
}

// defaultBounds are the latency bucket upper bounds in seconds, spanning
// sub-millisecond kernel solves to minute-scale deadline runs.
var defaultBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60}

func (m *metricsState) init() {
	m.solveSeconds = newHistogram(defaultBounds)
	m.waitSeconds = newHistogram(defaultBounds)
}

// histogram is a fixed-bucket latency histogram; counts[i] is the number
// of observations ≤ bounds[i], the final slot is the overflow bucket.
type histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// HistogramSnapshot is a copied-out latency histogram. Counts are
// per-bucket (not cumulative); Bounds[i] is bucket i's inclusive upper
// bound in seconds and the final count slot is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

func (h *histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// Metrics is a consistent point-in-time snapshot of the pool: gauges
// (queue depth, in-flight), lifetime counters, and the wait/solve latency
// histograms.
type Metrics struct {
	// QueueDepth is the number of jobs waiting to run.
	QueueDepth int
	// InFlight is the number of jobs currently solving.
	InFlight int
	// Workers and QueueCap echo the pool configuration.
	Workers, QueueCap int
	// Draining reports an in-progress shutdown.
	Draining bool

	// Submitted through RejectedSize are lifetime counters: terminal
	// states, deadline/cancellation stops among completed jobs, and the
	// two admission rejection classes (backpressure, size ceiling).
	Submitted    uint64
	Completed    uint64
	Failed       uint64
	Canceled     uint64
	Stopped      uint64
	RejectedFull uint64
	RejectedSize uint64

	// WaitSeconds observes submission→start latency, SolveSeconds the
	// start→finish solve time.
	WaitSeconds  HistogramSnapshot
	SolveSeconds HistogramSnapshot
}

// Metrics returns a consistent snapshot of the pool's gauges, counters and
// histograms.
func (p *Pool) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Metrics{
		QueueDepth:   p.queued,
		InFlight:     p.inflight,
		Workers:      p.cfg.Workers,
		QueueCap:     p.cfg.QueueCap,
		Draining:     p.draining,
		Submitted:    p.met.submitted,
		Completed:    p.met.completed,
		Failed:       p.met.failed,
		Canceled:     p.met.canceled,
		Stopped:      p.met.stopped,
		RejectedFull: p.met.rejectedFull,
		RejectedSize: p.met.rejectedSize,
		WaitSeconds:  p.met.waitSeconds.snapshot(),
		SolveSeconds: p.met.solveSeconds.snapshot(),
	}
}
