// Package jobqueue is the partitioning service's execution engine: a
// bounded, priority-ordered job queue drained by a fixed pool of worker
// goroutines, each holding one warm solver scratch (safe because the QBP
// solver owns and rebuilds its scratch at every solve entry). It provides
// the daemon's semantics — admission control by instance size,
// backpressure when the queue is full, per-job deadlines and cancellation
// through the solvers' context contract, progress-event streams, and a
// graceful drain that completes in-flight jobs with their best-so-far
// incumbents.
//
// Determinism is the standing contract: a job with a fixed seed produces
// the identical assignment regardless of the pool's worker count, the
// queue order, or which warm scratch it lands on — each job is one
// self-contained deterministic solve; the pool only decides when it runs.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/fm"
	"repro/internal/kl"
	"repro/internal/qbp"
	"repro/internal/validate"
)

// Submission errors, distinguished so the HTTP layer can map them to
// status codes (429, 413, 503, 400).
var (
	// ErrQueueFull reports backpressure: the bounded queue is at
	// capacity and the job was not admitted.
	ErrQueueFull = errors.New("jobqueue: queue full")
	// ErrTooLarge reports admission control: the instance exceeds the
	// pool's configured size ceiling.
	ErrTooLarge = errors.New("jobqueue: instance too large")
	// ErrDraining reports the pool is shutting down and accepts no new
	// work.
	ErrDraining = errors.New("jobqueue: pool is draining")
	// ErrUnknownMethod reports an unrecognized Request.Method.
	ErrUnknownMethod = errors.New("jobqueue: unknown method")
	// ErrNoProblem reports a Request without an instance.
	ErrNoProblem = errors.New("jobqueue: request has no problem")
)

// Config tunes a Pool. The zero value is serviceable: GOMAXPROCS workers,
// a 64-job queue, no size ceiling, no default deadline.
type Config struct {
	// Workers is the number of concurrent solves; ≤ 0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds the number of queued (not yet running) jobs;
	// ≤ 0 means 64. Submissions beyond it fail with ErrQueueFull.
	QueueCap int
	// MaxComponents rejects instances with more components at admission;
	// ≤ 0 disables the ceiling.
	MaxComponents int
	// DefaultDeadline is applied to jobs that request none; 0 means
	// unbounded.
	DefaultDeadline time.Duration
	// MaxDeadline caps every job's deadline; 0 means no cap.
	MaxDeadline time.Duration
	// ProgressInterval rate-limits each job's progress events; ≤ 0 means
	// 50ms. Terminal state events are never rate-limited.
	ProgressInterval time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 50 * time.Millisecond
	}
	return c
}

// Pool runs jobs on a fixed set of worker goroutines. Create one with New,
// stop it with Shutdown.
type Pool struct {
	cfg Config

	// mu is the single lock: it guards the queue, the job registry,
	// every job's state transition, and the metrics counters, so any
	// snapshot taken under it is one consistent view of the service.
	mu        sync.Mutex
	cond      *sync.Cond // signaled on enqueue and on drain
	pq        jobHeap
	queued    int // live (not cancelled) queued jobs
	inflight  int
	jobs      map[string]*Job
	byArrival []*Job
	seq       uint64
	draining  bool

	met metricsState

	wg sync.WaitGroup
}

// New starts a pool with cfg's workers running.
func New(cfg Config) *Pool {
	p := &Pool{
		cfg:  cfg.withDefaults(),
		jobs: make(map[string]*Job),
	}
	p.cond = sync.NewCond(&p.mu)
	p.met.init()
	for w := 0; w < p.cfg.Workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.worker()
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// QueueCap returns the pool's queue capacity.
func (p *Pool) QueueCap() int { return p.cfg.QueueCap }

// Submit admits a job, or reports why it cannot: ErrNoProblem /
// ErrUnknownMethod (bad request), ErrTooLarge (admission control),
// ErrQueueFull (backpressure), ErrDraining (shutdown), or the problem's
// own validation error. Admission is O(log queue) and never blocks on
// solving.
func (p *Pool) Submit(req Request) (*Job, error) {
	if req.Problem == nil {
		return nil, ErrNoProblem
	}
	if err := req.Problem.Validate(); err != nil {
		return nil, fmt.Errorf("jobqueue: invalid problem: %w", err)
	}
	method := req.Method
	if method == "" {
		method = "qbp"
	}
	switch method {
	case "qbp", "gfm", "gkl", "sa":
	default:
		return nil, fmt.Errorf("%w %q (want qbp, gfm, gkl or sa)", ErrUnknownMethod, req.Method)
	}
	if req.Deadline <= 0 {
		req.Deadline = p.cfg.DefaultDeadline
	}
	if p.cfg.MaxDeadline > 0 && (req.Deadline <= 0 || req.Deadline > p.cfg.MaxDeadline) {
		req.Deadline = p.cfg.MaxDeadline
	}
	return p.admit(req, method)
}

// admit is Submit's locked half: capacity checks and enqueueing.
func (p *Pool) admit(req Request, method string) (*Job, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return nil, ErrDraining
	}
	if n := req.Problem.N(); p.cfg.MaxComponents > 0 && n > p.cfg.MaxComponents {
		p.met.rejectedSize++
		return nil, fmt.Errorf("%w: %d components exceeds the pool ceiling %d", ErrTooLarge, n, p.cfg.MaxComponents)
	}
	if p.queued >= p.cfg.QueueCap {
		p.met.rejectedFull++
		return nil, fmt.Errorf("%w: %d jobs queued (capacity %d)", ErrQueueFull, p.queued, p.cfg.QueueCap)
	}

	p.seq++
	j := &Job{
		id:        fmt.Sprintf("job-%d", p.seq),
		seq:       p.seq,
		priority:  req.Priority,
		method:    method,
		req:       req,
		pool:      p,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	heap.Push(&p.pq, j)
	p.queued++
	p.jobs[j.id] = j
	p.byArrival = append(p.byArrival, j)
	p.met.submitted++
	p.cond.Signal()
	return j, nil
}

// Job looks a job up by ID.
func (p *Pool) Job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in submission order.
func (p *Pool) Jobs() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Job(nil), p.byArrival...)
}

// Cancel cancels a job: a queued job moves to Canceled without running; a
// running job's context is cancelled, so its solve completes promptly with
// the best-so-far incumbent (StateDone, Outcome.Stopped). Returns false
// when the ID is unknown; cancelling an already-terminal job is a no-op
// reporting true.
func (p *Pool) Cancel(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return false
	}
	p.cancelLocked(j, "canceled before start")
	return true
}

// cancelLocked implements Cancel and the drain path under pool.mu.
func (p *Pool) cancelLocked(j *Job, queuedReason string) {
	switch j.state {
	case StateQueued:
		p.queued--
		p.met.canceled++
		j.finishLocked(StateCanceled, &Outcome{Err: queuedReason}, time.Now())
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// Shutdown drains the pool: submissions start failing with ErrDraining,
// queued jobs are cancelled, running jobs' contexts are cancelled so each
// solve completes promptly with its best-so-far incumbent, and the workers
// exit. It returns nil once every worker has drained, or ctx.Err() when
// ctx expires first (workers keep draining in the background). Shutdown is
// idempotent.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	for _, j := range p.byArrival {
		if !j.state.Terminal() {
			p.cancelLocked(j, "canceled: pool shutting down")
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		p.wg.Wait()
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the queue until the pool shuts down. Each worker owns one
// warm scratch holder reused across every QBP job it runs — the daemon's
// answer to per-request solver allocations.
func (p *Pool) worker() {
	warm := &qbp.Scratch{}
	for {
		j := p.next()
		if j == nil {
			return
		}
		p.run(j, warm)
	}
}

// next blocks until a runnable job is available (returning it in the
// Running state) or the pool is draining with nothing left (returning
// nil). Cancelled-while-queued jobs left in the heap are skipped.
func (p *Pool) next() *Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for p.pq.Len() > 0 {
			j := heap.Pop(&p.pq).(*Job)
			if j.state != StateQueued {
				continue // cancelled while queued; already terminal
			}
			p.queued--
			p.inflight++
			j.state = StateRunning
			j.started = time.Now()
			p.met.waitSeconds.observe(j.started.Sub(j.submitted).Seconds())
			j.publishLocked(Event{Type: EventState, State: StateRunning})
			return j
		}
		if p.draining {
			return nil
		}
		p.cond.Wait()
	}
}

// run executes one job and records its terminal state.
func (p *Pool) run(j *Job, warm *qbp.Scratch) {
	ctx, cancel := context.WithCancel(context.Background())
	solveCtx := ctx
	var cancelDeadline context.CancelFunc
	if j.req.Deadline > 0 {
		solveCtx, cancelDeadline = context.WithTimeout(ctx, j.req.Deadline)
	}
	p.mu.Lock()
	j.cancel = cancel
	draining := p.draining
	p.mu.Unlock()
	if draining {
		// The job left the queue after the drain's cancel sweep: cancel it
		// here so it still completes promptly with best-so-far.
		cancel()
	}

	out, state := p.solve(solveCtx, j, warm)
	if cancelDeadline != nil {
		cancelDeadline()
	}
	cancel()

	finished := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inflight--
	p.met.solveSeconds.observe(finished.Sub(j.started).Seconds())
	switch state {
	case StateDone:
		p.met.completed++
		if out.Stopped {
			p.met.stopped++
		}
	case StateFailed:
		p.met.failed++
	case StateCanceled:
		p.met.canceled++
	}
	j.finishLocked(state, out, finished)
}

// solve runs the requested solver under the job's context and folds the
// result into an Outcome. A context hit before any incumbent exists maps
// to StateCanceled; a mid-solve stop is a StateDone with Stopped set (the
// solvers' best-so-far contract).
func (p *Pool) solve(ctx context.Context, j *Job, warm *qbp.Scratch) (*Outcome, State) {
	req := j.req
	progress := p.progressRelay(j)

	var (
		assignment []int
		stopped    bool
		stats      *qbp.SolveStats
		err        error
	)
	switch j.method {
	case "qbp":
		opts := qbp.Options{
			Iterations:  req.Iterations,
			Seed:        req.Seed,
			RelaxTiming: req.RelaxTiming,
			Workers:     req.Workers,
			OnProgress:  progress,
		}
		if req.MultiStart > 1 {
			// SolveMultiStart's workers each own a scratch; the warm
			// holder stays reserved for single-start jobs.
			var res *qbp.Result
			res, err = qbp.SolveMultiStart(ctx, req.Problem, qbp.MultiStartOptions{
				Base: opts, Starts: req.MultiStart,
			})
			if err == nil {
				assignment, stopped, stats = res.Assignment, res.Stopped, &res.Stats
			}
		} else {
			opts.Scratch = warm
			var res *qbp.Result
			res, err = qbp.Solve(ctx, req.Problem, opts)
			if err == nil {
				assignment, stopped, stats = res.Assignment, res.Stopped, &res.Stats
			}
		}
	case "gfm", "gkl", "sa":
		var start []int
		start, err = qbp.FeasibleStart(ctx, req.Problem, req.Seed, 40)
		if err != nil {
			err = fmt.Errorf("generating feasible start: %w", err)
			break
		}
		switch j.method {
		case "gfm":
			var res *fm.Result
			res, err = fm.Solve(ctx, req.Problem, start, fm.Options{RelaxTiming: req.RelaxTiming})
			if err == nil {
				assignment, stopped = res.Assignment, res.Stopped
			}
		case "gkl":
			var res *kl.Result
			res, err = kl.Solve(ctx, req.Problem, start, kl.Options{RelaxTiming: req.RelaxTiming})
			if err == nil {
				assignment, stopped = res.Assignment, res.Stopped
			}
		case "sa":
			var res *anneal.Result
			res, err = anneal.Solve(ctx, req.Problem, anneal.Options{
				Initial: start, RelaxTiming: req.RelaxTiming, Seed: req.Seed,
			})
			if err == nil {
				assignment, stopped = res.Assignment, res.Stopped
			}
		}
	}

	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return &Outcome{Err: "canceled before a solution existed", Stopped: true}, StateCanceled
		}
		return &Outcome{Err: err.Error()}, StateFailed
	}

	report, verr := validate.Check(req.Problem, assignment)
	if verr != nil {
		return &Outcome{Err: fmt.Sprintf("validating result: %v", verr)}, StateFailed
	}
	return &Outcome{
		Assignment:       assignment,
		Objective:        report.Objective,
		WireLength:       report.WireLength,
		Feasible:         report.Feasible,
		TimingViolations: len(report.TimingViolations),
		Stopped:          stopped,
		Stats:            stats,
	}, StateDone
}

// progressRelay adapts the solver's OnProgress callback into the job's
// event stream, rate-limited to the pool's ProgressInterval. The callback
// runs concurrently from every multistart worker, so the limiter is
// locked.
func (p *Pool) progressRelay(j *Job) func(qbp.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(pr qbp.Progress) {
		mu.Lock()
		now := time.Now()
		if now.Sub(last) < p.cfg.ProgressInterval {
			mu.Unlock()
			return
		}
		last = now
		mu.Unlock()
		p.mu.Lock()
		j.publishLocked(Event{Type: EventProgress, Progress: pr})
		p.mu.Unlock()
	}
}

// jobHeap orders queued jobs by descending priority, ties by submission
// sequence — a deterministic total order, so two pools fed the same
// submissions drain in the same order.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

// Push implements heap.Interface.
func (h *jobHeap) Push(x any) { *h = append(*h, x.(*Job)) }

// Pop implements heap.Interface.
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
