package jobqueue

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/testgen"
)

// testProblem builds a small deterministic instance.
func testProblem(t *testing.T, seed int64, n int) *model.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, _ := testgen.Random(rng, testgen.Config{N: n, TimingProb: 0.3, CapSlack: 1.5})
	return p
}

// waitJob blocks until the job is terminal or the test deadline hits.
func waitJob(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish (state %v)", j.ID(), j.Status().State)
	}
	return j.Status()
}

// shutdownPool drains p and fails the test on a hung drain.
func shutdownPool(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitGoroutines polls until the goroutine count settles back to at most
// base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertNoGoroutineLeak snapshots the goroutine count and fails the test
// at cleanup when it has not settled back — the qbp test helper applied to
// the pool's workers and drain.
func assertNoGoroutineLeak(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() { waitGoroutines(t, base) })
}

// TestSubmitSolveRoundTrip: a submitted job completes with a validated
// feasible outcome for every method.
func TestSubmitSolveRoundTrip(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 11, 30)
	pool := New(Config{Workers: 2, QueueCap: 8})
	defer shutdownPool(t, pool)

	for _, method := range []string{"qbp", "gfm", "gkl", "sa"} {
		j, err := pool.Submit(Request{Problem: prob, Method: method, Iterations: 8, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		st := waitJob(t, j)
		if st.State != StateDone {
			t.Fatalf("%s: state %v (outcome %+v)", method, st.State, st.Outcome)
		}
		out := st.Outcome
		if out == nil || len(out.Assignment) != prob.N() {
			t.Fatalf("%s: missing assignment", method)
		}
		if !prob.CapacityFeasible(out.Assignment) {
			t.Errorf("%s: capacity-infeasible result", method)
		}
		if method == "qbp" && out.Stats == nil {
			t.Errorf("qbp outcome missing solver stats")
		}
		if st.StartedAt.Before(st.SubmittedAt) || st.FinishedAt.Before(st.StartedAt) {
			t.Errorf("%s: timestamps out of order: %v %v %v", method, st.SubmittedAt, st.StartedAt, st.FinishedAt)
		}
	}

	m := pool.Metrics()
	if m.Completed != 4 || m.Submitted != 4 {
		t.Errorf("metrics: submitted %d completed %d, want 4/4", m.Submitted, m.Completed)
	}
	if m.SolveSeconds.Count != 4 || m.WaitSeconds.Count != 4 {
		t.Errorf("latency histograms observed %d/%d, want 4/4", m.SolveSeconds.Count, m.WaitSeconds.Count)
	}
}

// TestFixedSeedDeterministicAcrossPoolShapes: the acceptance criterion —
// one job description yields a bit-identical assignment for worker pools
// of size 1, 2 and 8, regardless of how much unrelated traffic surrounds
// it.
func TestFixedSeedDeterministicAcrossPoolShapes(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 12, 40)
	noise := testProblem(t, 13, 24)

	var reference model.Assignment
	for _, workers := range []int{1, 2, 8} {
		pool := New(Config{Workers: workers, QueueCap: 32})
		// Unrelated traffic with assorted seeds and priorities, submitted
		// before and after the job under test.
		for i := 0; i < 3; i++ {
			if _, err := pool.Submit(Request{Problem: noise, Seed: int64(100 + i), Iterations: 5, Priority: i % 2}); err != nil {
				t.Fatal(err)
			}
		}
		j, err := pool.Submit(Request{Problem: prob, Seed: 42, Iterations: 10, MultiStart: 3, Priority: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := pool.Submit(Request{Problem: noise, Seed: int64(200 + i), Iterations: 5, Priority: 2}); err != nil {
				t.Fatal(err)
			}
		}
		st := waitJob(t, j)
		if st.State != StateDone {
			t.Fatalf("workers=%d: state %v", workers, st.State)
		}
		got := st.Outcome.Assignment
		if reference == nil {
			reference = got
		} else {
			for c := range reference {
				if got[c] != reference[c] {
					t.Fatalf("workers=%d: assignment differs at component %d (%d vs %d)",
						workers, c, got[c], reference[c])
				}
			}
		}
		shutdownPool(t, pool)
	}
}

// TestPriorityOrder: with one worker, higher-priority jobs run first and
// ties run in submission order.
func TestPriorityOrder(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 14, 20)
	pool := New(Config{Workers: 1, QueueCap: 16})
	defer shutdownPool(t, pool)

	// A blocker job occupies the single worker while the queue fills.
	blockerProb := testProblem(t, 15, 30)
	blocker, err := pool.Submit(Request{Problem: blockerProb, Iterations: 2_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker is actually running so the queue order is
	// fully decided before the worker returns.
	for blocker.Status().State == StateQueued {
		time.Sleep(time.Millisecond)
	}

	low, err := pool.Submit(Request{Problem: prob, Iterations: 2, Seed: 2, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := pool.Submit(Request{Problem: prob, Iterations: 2, Seed: 3, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Cancel(blocker.ID()) {
		t.Fatal("cancel blocker")
	}
	waitJob(t, high)
	waitJob(t, low)
	hs, ls := high.Status(), low.Status()
	if !hs.StartedAt.Before(ls.StartedAt) {
		t.Errorf("high priority started %v, low %v — want high first", hs.StartedAt, ls.StartedAt)
	}
}

// TestBackpressureQueueFull: the bounded queue rejects the overflow
// submission with ErrQueueFull and counts it.
func TestBackpressureQueueFull(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 16, 20)
	pool := New(Config{Workers: 1, QueueCap: 2})
	defer shutdownPool(t, pool)

	// Fill the worker with a long job, then the queue to capacity.
	blocker, err := pool.Submit(Request{Problem: prob, Iterations: 2_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for blocker.Status().State == StateQueued {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := pool.Submit(Request{Problem: prob, Iterations: 2, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = pool.Submit(Request{Problem: prob, Iterations: 2, Seed: 9})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if m := pool.Metrics(); m.RejectedFull != 1 {
		t.Errorf("RejectedFull = %d, want 1", m.RejectedFull)
	}
	pool.Cancel(blocker.ID())
}

// TestAdmissionControlTooLarge: instances above the component ceiling are
// rejected up front.
func TestAdmissionControlTooLarge(t *testing.T) {
	assertNoGoroutineLeak(t)
	pool := New(Config{Workers: 1, QueueCap: 4, MaxComponents: 25})
	defer shutdownPool(t, pool)

	if _, err := pool.Submit(Request{Problem: testProblem(t, 17, 40)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize submit: %v, want ErrTooLarge", err)
	}
	if _, err := pool.Submit(Request{Problem: testProblem(t, 17, 20), Iterations: 2}); err != nil {
		t.Fatalf("in-bounds submit: %v", err)
	}
	if m := pool.Metrics(); m.RejectedSize != 1 {
		t.Errorf("RejectedSize = %d, want 1", m.RejectedSize)
	}
}

// TestBadRequests: nil problems and unknown methods fail fast.
func TestBadRequests(t *testing.T) {
	assertNoGoroutineLeak(t)
	pool := New(Config{Workers: 1, QueueCap: 4})
	defer shutdownPool(t, pool)
	if _, err := pool.Submit(Request{}); !errors.Is(err, ErrNoProblem) {
		t.Errorf("nil problem: %v, want ErrNoProblem", err)
	}
	if _, err := pool.Submit(Request{Problem: testProblem(t, 18, 20), Method: "annealer"}); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("bad method: %v, want ErrUnknownMethod", err)
	}
}

// TestCancelRunningReturnsIncumbent: cancelling a mid-solve job completes
// it as Done with the best-so-far incumbent and Stopped set — the solver
// contract surfaced through the queue.
func TestCancelRunningReturnsIncumbent(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 19, 40)
	pool := New(Config{Workers: 1, QueueCap: 4, ProgressInterval: time.Nanosecond})
	defer shutdownPool(t, pool)

	j, err := pool.Submit(Request{Problem: prob, Iterations: 50_000_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real solve progress so an incumbent exists, then cancel.
	events, stop := j.Subscribe(64)
	defer stop()
	sawProgress := false
	for ev := range events {
		if ev.Type == EventProgress && ev.Progress.Iteration >= 1 {
			sawProgress = true
			if !pool.Cancel(j.ID()) {
				t.Fatal("cancel")
			}
		}
	}
	if !sawProgress {
		t.Fatal("stream closed without a progress event")
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("state %v, want Done (outcome %+v)", st.State, st.Outcome)
	}
	if !st.Outcome.Stopped {
		t.Error("cancelled solve did not report Stopped")
	}
	if len(st.Outcome.Assignment) != prob.N() || !prob.CapacityFeasible(st.Outcome.Assignment) {
		t.Error("cancelled solve did not return a capacity-feasible incumbent")
	}
	if m := pool.Metrics(); m.Stopped != 1 {
		t.Errorf("Stopped counter = %d, want 1", m.Stopped)
	}
}

// TestCancelQueued: a queued job cancels without ever running.
func TestCancelQueued(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 20, 30)
	pool := New(Config{Workers: 1, QueueCap: 4})
	defer shutdownPool(t, pool)

	blocker, err := pool.Submit(Request{Problem: prob, Iterations: 2_000_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for blocker.Status().State == StateQueued {
		time.Sleep(time.Millisecond)
	}
	victim, err := pool.Submit(Request{Problem: prob, Iterations: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Cancel(victim.ID()) {
		t.Fatal("cancel queued")
	}
	st := waitJob(t, victim)
	if st.State != StateCanceled {
		t.Fatalf("state %v, want Canceled", st.State)
	}
	if st.StartedAt != (time.Time{}) {
		t.Error("cancelled-while-queued job has a start time")
	}
	pool.Cancel(blocker.ID())
	if pool.Cancel("job-999") {
		t.Error("cancel of unknown id reported true")
	}
}

// TestDeadlineReturnsStopped: a job with a tight deadline completes as
// Done with Stopped set and a feasible incumbent.
func TestDeadlineReturnsStopped(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 21, 40)
	pool := New(Config{Workers: 1, QueueCap: 4})
	defer shutdownPool(t, pool)

	j, err := pool.Submit(Request{Problem: prob, Iterations: 50_000_000, Seed: 5, Deadline: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("state %v, want Done", st.State)
	}
	if !st.Outcome.Stopped {
		t.Error("deadline solve did not report Stopped")
	}
	if !prob.CapacityFeasible(st.Outcome.Assignment) {
		t.Error("deadline solve returned an infeasible incumbent")
	}
}

// TestMaxDeadlineClamp: the pool caps per-job deadlines, and applies the
// default when none is requested.
func TestMaxDeadlineClamp(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 22, 40)
	pool := New(Config{Workers: 1, QueueCap: 4, MaxDeadline: 100 * time.Millisecond})
	defer shutdownPool(t, pool)

	// Requests an hour; the clamp makes it stop within the test's patience.
	j, err := pool.Submit(Request{Problem: prob, Iterations: 50_000_000, Seed: 5, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone || !st.Outcome.Stopped {
		t.Fatalf("clamped job: state %v stopped %v, want Done/stopped", st.State, st.Outcome != nil && st.Outcome.Stopped)
	}

	// No deadline requested: the unbounded request is also clamped.
	j2, err := pool.Submit(Request{Problem: prob, Iterations: 50_000_000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j2); st.State != StateDone || !st.Outcome.Stopped {
		t.Fatalf("defaulted job: state %v, want Done/stopped", st.State)
	}
}

// TestGracefulDrain: Shutdown cancels queued jobs, completes running jobs
// with best-so-far results, rejects new submissions, and leaks nothing.
func TestGracefulDrain(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 23, 40)
	pool := New(Config{Workers: 2, QueueCap: 16, ProgressInterval: time.Nanosecond})

	var running []*Job
	for i := 0; i < 2; i++ {
		j, err := pool.Submit(Request{Problem: prob, Iterations: 50_000_000, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		running = append(running, j)
	}
	for _, j := range running {
		for j.Status().State == StateQueued {
			time.Sleep(time.Millisecond)
		}
	}
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := pool.Submit(Request{Problem: prob, Iterations: 2, Seed: int64(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	shutdownPool(t, pool)

	for _, j := range running {
		st := j.Status()
		if st.State != StateDone {
			t.Errorf("in-flight job %s drained to %v, want Done", j.ID(), st.State)
			continue
		}
		if !st.Outcome.Stopped {
			t.Errorf("in-flight job %s not marked Stopped", j.ID())
		}
		if !prob.CapacityFeasible(st.Outcome.Assignment) {
			t.Errorf("in-flight job %s drained without a feasible incumbent", j.ID())
		}
	}
	for _, j := range queued {
		if st := j.Status(); st.State != StateCanceled {
			t.Errorf("queued job %s drained to %v, want Canceled", j.ID(), st.State)
		}
	}
	if _, err := pool.Submit(Request{Problem: prob}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown submit: %v, want ErrDraining", err)
	}
	if m := pool.Metrics(); !m.Draining {
		t.Error("metrics do not report draining")
	}
	// Idempotent.
	if err := pool.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestSubscribeAfterTerminal: late subscribers get an immediately-closed
// channel, and the status still carries the outcome.
func TestSubscribeAfterTerminal(t *testing.T) {
	assertNoGoroutineLeak(t)
	prob := testProblem(t, 24, 20)
	pool := New(Config{Workers: 1, QueueCap: 4})
	defer shutdownPool(t, pool)

	j, err := pool.Submit(Request{Problem: prob, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	events, stop := j.Subscribe(4)
	defer stop()
	select {
	case _, ok := <-events:
		if ok {
			t.Error("late subscription delivered an event, want closed channel")
		}
	case <-time.After(time.Second):
		t.Error("late subscription channel not closed")
	}
}
